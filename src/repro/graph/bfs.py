"""Depth-limited breadth-first search and sub-graph extraction.

MeLoPPR's first step for every stage is to extract the sub-graph ``G_l(v)``
induced by the nodes within ``l`` hops of a centre node ``v`` (Sec. IV-A).
The extraction time is part of the CPU cost in the co-designed system (the
light-blue "BFS time percentage" bars of Fig. 7), so this module reports both
the sub-graph and the work performed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.subgraph import Subgraph
from repro.utils.validation import check_node_id, check_non_negative_int

__all__ = [
    "BFSResult",
    "bfs_levels",
    "bfs_frontier_sizes",
    "expand_frontier",
    "extract_ego_subgraph",
]


@dataclass(frozen=True)
class BFSResult:
    """Result of a depth-limited BFS from a single source.

    Attributes
    ----------
    source:
        The source node (global id).
    depth:
        The depth limit used.
    nodes:
        Global ids of all reached nodes, in visit order (source first).
    levels:
        ``levels[i]`` is the hop distance of ``nodes[i]`` from the source.
    edges_scanned:
        Number of adjacency entries read — the dominant term of the BFS cost
        model used by the hardware co-simulation.
    """

    source: int
    depth: int
    nodes: np.ndarray
    levels: np.ndarray
    edges_scanned: int

    @property
    def num_nodes(self) -> int:
        """Number of reached nodes."""
        return int(self.nodes.size)

    def frontier_sizes(self) -> np.ndarray:
        """Number of nodes at each hop distance ``0..depth``."""
        return np.bincount(self.levels, minlength=self.depth + 1)


def expand_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    frontier: np.ndarray,
    visited: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """One BFS level: the unvisited neighbours of ``frontier``, sorted by id.

    The returned nodes are marked in ``visited`` (in place) and come out
    ascending — the visit-order contract every extraction in the library
    relies on (it is what makes shard-local and host-graph extractions
    bit-identical).  Also returns the number of adjacency entries scanned,
    the dominant term of the BFS cost model.  ``frontier`` must be non-empty.
    """
    starts = indptr[frontier]
    ends = indptr[frontier + 1]
    scanned = int((ends - starts).sum())
    if frontier.size == 1:
        neighbors = indices[starts[0] : ends[0]].astype(np.int64)
    else:
        neighbors = np.concatenate(
            [indices[s:e] for s, e in zip(starts, ends)]
        ).astype(np.int64)
    fresh = np.unique(neighbors[~visited[neighbors]])
    visited[fresh] = True
    return fresh, scanned


def bfs_levels(graph: CSRGraph, source: int, depth: int) -> BFSResult:
    """Breadth-first search from ``source`` limited to ``depth`` hops.

    Parameters
    ----------
    graph:
        The host graph.
    source:
        Source node id.
    depth:
        Maximum hop distance (``0`` returns only the source).

    Returns
    -------
    BFSResult
    """
    source = check_node_id(source, graph.num_nodes, "source")
    depth = check_non_negative_int(depth, "depth")

    indptr, indices = graph.indptr, graph.indices
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[source] = True
    node_chunks: List[np.ndarray] = [np.asarray([source], dtype=np.int64)]
    level_chunks: List[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    frontier = np.asarray([source], dtype=np.int64)
    edges_scanned = 0

    for level in range(1, depth + 1):
        if frontier.size == 0:
            break
        fresh, scanned = expand_frontier(indptr, indices, frontier, visited)
        edges_scanned += scanned
        if fresh.size == 0:
            break
        node_chunks.append(fresh)
        level_chunks.append(np.full(fresh.size, level, dtype=np.int64))
        frontier = fresh

    return BFSResult(
        source=source,
        depth=depth,
        nodes=np.concatenate(node_chunks),
        levels=np.concatenate(level_chunks),
        edges_scanned=edges_scanned,
    )


def bfs_frontier_sizes(graph: CSRGraph, source: int, depth: int) -> np.ndarray:
    """Convenience wrapper returning only the per-level frontier sizes."""
    return bfs_levels(graph, source, depth).frontier_sizes()


def extract_ego_subgraph(
    graph: CSRGraph, source: int, depth: int
) -> Tuple[Subgraph, BFSResult]:
    """Extract the depth-``depth`` ego sub-graph ``G_depth(source)``.

    The sub-graph contains every node within ``depth`` hops of ``source`` and
    every edge of the host graph between two such nodes.  Node ids are
    relabelled to ``0..n_sub-1`` (source becomes local id 0); the mapping back
    to global ids is carried by the returned :class:`Subgraph`.

    Returns
    -------
    (Subgraph, BFSResult)
        The extracted sub-graph and the BFS bookkeeping (for cost models).
    """
    result = bfs_levels(graph, source, depth)
    subgraph = Subgraph.induced(graph, result.nodes, name=f"{graph.name}:G{depth}({source})")
    return subgraph, result
