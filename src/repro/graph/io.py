"""Edge-list I/O in the SNAP text format.

The paper's datasets are distributed by SNAP as whitespace-separated edge
lists with ``#`` comment lines.  These functions read and write that format so
that users with the real datasets can drop them straight into the
reproduction.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph

__all__ = ["read_edge_list", "write_edge_list", "read_snap_graph"]

PathLike = Union[str, Path]


def _open_text(path: Path, mode: str):
    """Open ``path`` as text, transparently handling ``.gz`` files."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_edge_list(
    path: PathLike,
    comment: str = "#",
    relabel: bool = True,
    name: Optional[str] = None,
) -> CSRGraph:
    """Read an undirected graph from a whitespace-separated edge list.

    Parameters
    ----------
    path:
        File path; ``.gz`` files are decompressed on the fly.
    comment:
        Lines starting with this prefix are skipped.
    relabel:
        When true (default), arbitrary integer node ids are relabelled to the
        contiguous range ``0..n-1`` in order of first appearance — SNAP files
        use sparse ids.  When false, ids are used as-is and must already be
        contiguous.
    name:
        Graph name; defaults to the file stem.

    Returns
    -------
    CSRGraph
    """
    path = Path(path)
    sources: list[int] = []
    targets: list[int] = []
    with _open_text(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line in {path}: {line!r}")
            sources.append(int(parts[0]))
            targets.append(int(parts[1]))

    graph_name = name if name is not None else path.stem.replace(".txt", "")
    if not sources:
        return GraphBuilder(num_nodes=0).build(name=graph_name)

    sources_array = np.asarray(sources, dtype=np.int64)
    targets_array = np.asarray(targets, dtype=np.int64)
    if relabel:
        ids = np.concatenate([sources_array, targets_array])
        unique, inverse = np.unique(ids, return_inverse=True)
        sources_array = inverse[: sources_array.size]
        targets_array = inverse[sources_array.size :]
        num_nodes = int(unique.size)
    else:
        num_nodes = int(max(sources_array.max(), targets_array.max()) + 1)

    builder = GraphBuilder(num_nodes=num_nodes)
    builder.add_edges(np.column_stack([sources_array, targets_array]))
    return builder.build(name=graph_name)


#: Alias with the SNAP-centric name used in the documentation.
read_snap_graph = read_edge_list


def write_edge_list(graph: CSRGraph, path: PathLike, header: bool = True) -> None:
    """Write ``graph`` as a SNAP-style edge list (each undirected edge once).

    Parameters
    ----------
    graph:
        The graph to serialise.
    path:
        Output file; ``.gz`` suffix enables compression.
    header:
        Whether to emit the usual SNAP comment header.
    """
    path = Path(path)
    with _open_text(path, "w") as handle:
        if header:
            handle.write(f"# Undirected graph: {graph.name}\n")
            handle.write(f"# Nodes: {graph.num_nodes} Edges: {graph.num_edges}\n")
            handle.write("# FromNodeId\tToNodeId\n")
        for u, v in graph.iter_edges():
            handle.write(f"{u}\t{v}\n")
