"""Induced sub-graphs with global↔local node-id mapping.

MeLoPPR never loads the full graph into "on-chip" memory; every diffusion is
executed on a small induced sub-graph whose nodes are relabelled to a dense
local id range.  :class:`Subgraph` couples the relabelled
:class:`~repro.graph.csr.CSRGraph` with the mapping back to global ids, which
the aggregation step (Eq. 8) needs when it folds local scores into the global
score table.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["Subgraph"]


class Subgraph:
    """A relabelled induced sub-graph of a host :class:`CSRGraph`.

    Attributes
    ----------
    graph:
        The induced sub-graph with local node ids ``0..num_nodes-1``.
    global_ids:
        ``global_ids[local]`` is the host-graph id of local node ``local``.
    """

    __slots__ = ("graph", "global_ids", "_local_of")

    def __init__(self, graph: CSRGraph, global_ids: np.ndarray) -> None:
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if global_ids.size != graph.num_nodes:
            raise ValueError(
                "global_ids length must equal the sub-graph node count "
                f"({global_ids.size} != {graph.num_nodes})"
            )
        if np.unique(global_ids).size != global_ids.size:
            raise ValueError("global_ids must be unique")
        self.graph = graph
        self.global_ids = global_ids
        self.global_ids.setflags(write=False)
        self._local_of: Dict[int, int] = {
            int(g): i for i, g in enumerate(global_ids)
        }

    # ------------------------------------------------------------------
    @classmethod
    def induced(
        cls, host: CSRGraph, nodes: Iterable[int], name: Optional[str] = None
    ) -> "Subgraph":
        """Build the sub-graph induced by ``nodes`` (order defines local ids)."""
        global_ids = np.asarray(list(nodes), dtype=np.int64)
        if np.unique(global_ids).size != global_ids.size:
            raise ValueError("nodes must be unique")
        local_of = np.full(host.num_nodes, -1, dtype=np.int64)
        local_of[global_ids] = np.arange(global_ids.size)

        if global_ids.size:
            starts = host.indptr[global_ids]
            ends = host.indptr[global_ids + 1]
            counts = ends - starts
            if global_ids.size == 1:
                gathered = host.indices[starts[0] : ends[0]]
            else:
                gathered = np.concatenate(
                    [host.indices[s:e] for s, e in zip(starts, ends)]
                )
            mapped = local_of[gathered]
            sources = np.repeat(np.arange(global_ids.size), counts)
            keep = mapped >= 0
            sources, mapped = sources[keep], mapped[keep]
            order = np.lexsort((mapped, sources))
            indices = mapped[order].astype(np.int32)
            kept_counts = np.bincount(sources, minlength=global_ids.size)
            indptr = np.zeros(global_ids.size + 1, dtype=np.int64)
            np.cumsum(kept_counts, out=indptr[1:])
        else:
            indptr = np.zeros(1, dtype=np.int64)
            indices = np.empty(0, dtype=np.int32)
        sub_name = name if name is not None else f"{host.name}:induced"
        return cls(CSRGraph(indptr, indices, name=sub_name), global_ids)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the sub-graph."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges in the sub-graph."""
        return self.graph.num_edges

    def to_local(self, global_id: int) -> int:
        """Map a host-graph node id to its local id (raises ``KeyError`` if absent)."""
        return self._local_of[int(global_id)]

    def contains_global(self, global_id: int) -> bool:
        """Whether the host-graph node ``global_id`` is part of this sub-graph."""
        return int(global_id) in self._local_of

    def to_global(self, local_id: int) -> int:
        """Map a local node id back to the host-graph id."""
        return int(self.global_ids[local_id])

    def localize_vector(self, global_vector: np.ndarray) -> np.ndarray:
        """Gather the entries of a global score vector for this sub-graph's nodes."""
        global_vector = np.asarray(global_vector)
        if global_vector.ndim != 1:
            raise ValueError("global_vector must be one-dimensional")
        return global_vector[self.global_ids]

    def globalize_scores(self, local_scores: np.ndarray, num_global_nodes: int) -> np.ndarray:
        """Scatter local scores back into a dense global vector of zeros."""
        local_scores = np.asarray(local_scores, dtype=np.float64)
        if local_scores.size != self.num_nodes:
            raise ValueError(
                "local_scores length must equal the sub-graph node count"
            )
        result = np.zeros(num_global_nodes, dtype=np.float64)
        result[self.global_ids] = local_scores
        return result

    def __repr__(self) -> str:
        return (
            f"Subgraph(name={self.graph.name!r}, num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges})"
        )
