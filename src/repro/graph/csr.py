"""Immutable compressed-sparse-row (CSR) graph.

The paper stores graphs and performs matrix–vector products in CSR format
(Sec. VI).  :class:`CSRGraph` is the single graph representation used by every
kernel in this library: the diffusion operator, BFS sub-graph extraction, the
FPGA processing-element model and the baselines all read the same three
arrays (``indptr``, ``indices`` and the node count).

Nodes are contiguous integers ``0 .. num_nodes - 1``.  Graphs are simple and
undirected unless built otherwise: the builder symmetrises edges, removes
self-loops and removes duplicates.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.utils.validation import check_node_id

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable undirected graph stored in CSR adjacency format.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_nodes + 1``; row pointer of the CSR
        adjacency structure.
    indices:
        ``int32`` array of length ``num_edges_directed``; concatenated
        neighbour lists.  For an undirected graph every edge appears twice
        (once per endpoint).
    name:
        Optional human-readable name (dataset name).

    Notes
    -----
    Use :class:`repro.graph.builder.GraphBuilder` or the module-level
    constructors (:meth:`from_edges`, :meth:`from_scipy`) rather than calling
    this constructor with hand-built arrays.
    """

    __slots__ = ("_indptr", "_indices", "_name", "_fingerprint", "_operator_memo")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        name: str = "graph",
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int32)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional arrays")
        if indptr.size == 0:
            raise ValueError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if indptr[-1] != indices.size:
            raise ValueError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) ({indices.size})"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        num_nodes = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= num_nodes):
            raise ValueError("indices contain node ids outside [0, num_nodes)")
        self._indptr = indptr
        self._indices = indices
        self._name = str(name)
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)
        self._fingerprint: Optional[str] = None
        # Per-kernel TransitionOperator memo (lazily created by
        # TransitionOperator.for_graph).  Rides along with cached sub-graph
        # objects so repeated diffusions never rebuild operator structure;
        # deliberately excluded from pickling (see __getstate__).
        self._operator_memo: Optional[dict] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        name: str = "graph",
        directed: bool = False,
    ) -> "CSRGraph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Self-loops and duplicate edges are dropped.  When ``directed`` is
        false (the default, matching the paper's simple undirected graphs)
        each edge is stored in both directions.
        """
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder(num_nodes=num_nodes, directed=directed)
        builder.add_edges(edges)
        return builder.build(name=name)

    @classmethod
    def from_scipy(cls, matrix: sparse.spmatrix, name: str = "graph") -> "CSRGraph":
        """Build a graph from a scipy sparse adjacency matrix.

        The matrix is symmetrised (``max(A, A.T)`` pattern union), its diagonal
        is dropped and values are ignored: only the sparsity pattern matters.
        """
        matrix = sparse.csr_matrix(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"adjacency matrix must be square, got {matrix.shape}")
        matrix = matrix.maximum(matrix.T)
        matrix.setdiag(0)
        matrix.eliminate_zeros()
        matrix.sort_indices()
        return cls(matrix.indptr.astype(np.int64), matrix.indices, name=name)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable graph name."""
        return self._name

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|`` (each stored twice internally)."""
        return self._indices.size // 2

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries."""
        return int(self._indices.size)

    @property
    def size(self) -> int:
        """Graph size ``|V| + |E|`` as defined in the paper's preliminaries."""
        return self.num_nodes + self.num_edges

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row-pointer array (length ``num_nodes + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only CSR column-index array."""
        return self._indices

    # ------------------------------------------------------------------
    # Neighbourhood access
    # ------------------------------------------------------------------
    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        node = check_node_id(node, self.num_nodes)
        return int(self._indptr[node + 1] - self._indptr[node])

    def degrees(self) -> np.ndarray:
        """Array of all node degrees (``int64``)."""
        return np.diff(self._indptr)

    def neighbors(self, node: int) -> np.ndarray:
        """Read-only array of the neighbours of ``node``."""
        node = check_node_id(node, self.num_nodes)
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` if the edge ``(u, v)`` exists."""
        u = check_node_id(u, self.num_nodes, "u")
        v = check_node_id(v, self.num_nodes, "v")
        row = self.neighbors(u)
        position = np.searchsorted(row, v)
        return bool(position < row.size and row[position] == v)

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each undirected edge once as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_nodes):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """Return all undirected edges once as an ``(|E|, 2)`` array."""
        sources = np.repeat(np.arange(self.num_nodes), self.degrees())
        mask = sources < self._indices
        return np.column_stack([sources[mask], self._indices[mask]])

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_scipy(self) -> sparse.csr_matrix:
        """Return the (unweighted) adjacency matrix as scipy CSR."""
        data = np.ones(self._indices.size, dtype=np.float64)
        return sparse.csr_matrix(
            (data, self._indices.astype(np.int64), self._indptr),
            shape=(self.num_nodes, self.num_nodes),
        )

    def to_networkx(self):
        """Return an equivalent ``networkx.Graph`` (node ids preserved)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_nodes))
        graph.add_edges_from(self.iter_edges())
        return graph

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Bytes used by the CSR arrays (the CPU-side storage of the graph)."""
        return int(self._indptr.nbytes + self._indices.nbytes)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Structural digest of the CSR arrays (hex, 32 chars).

        Two graphs have the same fingerprint exactly when their ``indptr``
        and ``indices`` arrays are equal — the name is deliberately excluded,
        so a rebuilt graph with identical structure fingerprints the same
        while any topology change (added edge, relabelling, repartition
        rebuild) produces a different digest.  Serving-layer caches key on
        this to guarantee a derived artefact (an extraction, a folded score
        table) is never served against a different topology.

        Computed lazily and memoised: the arrays are immutable, so the hash
        is paid once per graph, not once per cache lookup.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(self._indptr.data)
            digest.update(self._indices.data)
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle only the CSR arrays, the name and the fingerprint memo.

        The operator memo holds derived kernel structure (scipy matrices,
        row-id arrays) that is cheaper to rebuild than to ship — and in the
        process-pool serving path the receiving side attaches its own
        shared-memory arrays anyway.
        """
        return {
            "indptr": self._indptr,
            "indices": self._indices,
            "name": self._name,
            "fingerprint": self._fingerprint,
        }

    def __setstate__(self, state: dict) -> None:
        self._indptr = state["indptr"]
        self._indices = state["indices"]
        self._name = state["name"]
        self._fingerprint = state["fingerprint"]
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)
        self._operator_memo = None

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"CSRGraph(name={self._name!r}, num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        # Must agree with the structural __eq__ above: two independently
        # built graphs with identical CSR arrays compare equal, so they have
        # to land in the same hash bucket.  The memoized fingerprint covers
        # exactly the arrays __eq__ compares (names are excluded from both).
        return hash(self.fingerprint())
