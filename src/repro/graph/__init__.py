"""Graph substrate: CSR graphs, builders, generators, datasets, BFS, sub-graphs."""

from repro.graph.bfs import (
    BFSResult,
    bfs_frontier_sizes,
    bfs_levels,
    expand_frontier,
    extract_ego_subgraph,
)
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.graph.datasets import (
    PAPER_DATASETS,
    DatasetSpec,
    dataset_names,
    get_spec,
    load_dataset,
    load_paper_suite,
)
from repro.graph.generators import (
    barabasi_albert_graph,
    citation_graph,
    community_graph,
    configuration_model_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    stochastic_block_model,
    watts_strogatz_graph,
)
from repro.graph.delta import (
    DEFAULT_REGION_SIZE,
    DeltaGraph,
    min_hop_distances,
    normalize_edge_ops,
    update_distance_bound,
)
from repro.graph.io import read_edge_list, read_snap_graph, write_edge_list
from repro.graph.partition import (
    DEFAULT_HALO_DEPTH,
    PARTITIONERS,
    GraphPartition,
    GraphShard,
    degree_balanced_partition,
    hash_partition,
    partition_graph,
    patch_partition,
    range_partition,
)
from repro.graph.stats import GraphStats, compute_stats, degree_histogram
from repro.graph.subgraph import Subgraph

__all__ = [
    "BFSResult",
    "bfs_frontier_sizes",
    "bfs_levels",
    "expand_frontier",
    "extract_ego_subgraph",
    "GraphBuilder",
    "CSRGraph",
    "PAPER_DATASETS",
    "DatasetSpec",
    "dataset_names",
    "get_spec",
    "load_dataset",
    "load_paper_suite",
    "barabasi_albert_graph",
    "citation_graph",
    "community_graph",
    "configuration_model_graph",
    "erdos_renyi_graph",
    "powerlaw_cluster_graph",
    "stochastic_block_model",
    "watts_strogatz_graph",
    "DEFAULT_REGION_SIZE",
    "DeltaGraph",
    "min_hop_distances",
    "normalize_edge_ops",
    "update_distance_bound",
    "read_edge_list",
    "read_snap_graph",
    "write_edge_list",
    "DEFAULT_HALO_DEPTH",
    "PARTITIONERS",
    "GraphPartition",
    "GraphShard",
    "degree_balanced_partition",
    "hash_partition",
    "partition_graph",
    "patch_partition",
    "range_partition",
    "GraphStats",
    "compute_stats",
    "degree_histogram",
    "Subgraph",
]
