"""Tests for repro.graph.stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.graph.stats import compute_stats, degree_histogram


class TestComputeStats:
    def test_triangle(self, triangle_graph):
        stats = compute_stats(triangle_graph)
        assert stats.num_nodes == 3
        assert stats.num_edges == 3
        assert stats.min_degree == 2
        assert stats.max_degree == 2
        assert stats.average_degree == pytest.approx(2.0)
        assert stats.density == pytest.approx(1.0)

    def test_star(self, star_graph):
        stats = compute_stats(star_graph)
        assert stats.max_degree == 6
        assert stats.min_degree == 1
        assert stats.median_degree == 1.0

    def test_isolated_nodes_counted(self):
        graph = GraphBuilder(num_nodes=4).add_edge(0, 1).build()
        assert compute_stats(graph).isolated_nodes == 2

    def test_empty_graph(self):
        graph = CSRGraph(np.array([0]), np.array([], dtype=np.int32))
        stats = compute_stats(graph)
        assert stats.num_nodes == 0
        assert stats.density == 0.0

    def test_as_dict_keys(self, triangle_graph):
        data = compute_stats(triangle_graph).as_dict()
        assert {"name", "num_nodes", "num_edges", "density"} <= set(data)

    def test_name_propagated(self, path_graph):
        assert compute_stats(path_graph).name == "path5"


class TestDegreeHistogram:
    def test_star_histogram(self, star_graph):
        hist = degree_histogram(star_graph)
        assert hist[1] == 6
        assert hist[6] == 1

    def test_histogram_sums_to_node_count(self, small_ba_graph):
        hist = degree_histogram(small_ba_graph)
        assert hist.sum() == small_ba_graph.num_nodes

    def test_empty_graph_histogram(self):
        graph = CSRGraph(np.array([0]), np.array([], dtype=np.int32))
        assert degree_histogram(graph).sum() == 0
