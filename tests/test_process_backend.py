"""Process-pool backend: lifecycle, crash recovery, shared-memory hygiene."""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert_graph
from repro.graph.partition import partition_graph
from repro.meloppr.planner import StageTask
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving import (
    ProcessPoolBackend,
    QueryEngine,
    ShardRouter,
    WorkerCrashError,
    leaked_segment_names,
    make_backend,
)
from repro.serving.backends import _picklable_exception, _WorkerState
from repro.serving.shm import SharedGraphHandle, SharedShardHandle


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(200, 2, rng=3, name="ba200-proc")


@pytest.fixture(scope="module")
def queries():
    return [PPRQuery(seed=seed, k=20) for seed in (5, 9, 14, 5, 9, 33)]


def run_with_timeout(fn, timeout=60.0):
    """Run ``fn`` on a thread; fail the test instead of hanging pytest."""
    box = {}

    def target():
        try:
            box["result"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    assert not thread.is_alive(), f"call did not finish within {timeout}s (hang)"
    if "error" in box:
        raise box["error"]
    return box["result"]


class TestSpecParsing:
    def test_make_backend_process(self):
        backend = make_backend("process:3")
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.num_workers == 3
        assert not backend.is_running

    def test_make_backend_process_default_workers(self):
        backend = make_backend("process")
        assert backend.num_workers == (os.cpu_count() or 1)

    def test_invalid_worker_counts(self):
        with pytest.raises(ValueError, match="num_workers"):
            ProcessPoolBackend(num_workers=0)
        with pytest.raises(ValueError, match="cache_bytes"):
            ProcessPoolBackend(cache_bytes=0)
        with pytest.raises(ValueError, match="start method"):
            ProcessPoolBackend(mp_context="no-such-method")

    def test_unknown_spec_mentions_process(self):
        with pytest.raises(ValueError, match="process"):
            make_backend("gpu:4")


class TestBindingLifecycle:
    def test_dispatch_before_bind_raises(self):
        backend = ProcessPoolBackend(num_workers=1)
        with pytest.raises(RuntimeError, match="unbound"):
            backend.run_stage_tasks([StageTask(0, 0, 1, 1.0, 0.85)])

    def test_rebind_same_graph_is_noop_other_graph_raises(self, graph):
        backend = ProcessPoolBackend(num_workers=1)
        try:
            backend.bind_graph(graph)
            assert backend.is_running
            backend.bind_graph(graph)  # idempotent
            other = barabasi_albert_graph(50, 2, rng=1, name="other")
            with pytest.raises(RuntimeError, match="one ProcessPoolBackend per graph"):
                backend.bind_graph(other)
            with pytest.raises(RuntimeError, match="already bound"):
                backend.bind_partition(partition_graph(other, 2))
        finally:
            backend.close()
        assert not backend.is_running

    def test_close_idempotent_and_releases_segments(self, graph):
        before = set(leaked_segment_names())
        backend = ProcessPoolBackend(num_workers=2)
        backend.bind_graph(graph)
        created = set(leaked_segment_names()) - before
        assert created, "binding must export shared segments"
        backend.close()
        backend.close()
        assert set(leaked_segment_names()) - before == set()

    def test_restart_after_close(self, graph, queries):
        backend = ProcessPoolBackend(num_workers=2)
        with QueryEngine(MeLoPPRSolver(graph)) as engine:
            reference = [r.top_k() for r in engine.solve_batch(queries)]
        engine = QueryEngine(MeLoPPRSolver(graph), backend=backend)
        first = [r.top_k() for r in engine.solve_batch(queries)]
        backend.close()
        assert not backend.is_running
        # The stored binding lets the next batch respawn the pool.
        second = [r.top_k() for r in engine.solve_batch(queries)]
        engine.close()
        assert first == reference and second == reference

    def test_repr_states_binding(self, graph):
        backend = ProcessPoolBackend(num_workers=2)
        assert "unbound" in repr(backend)
        try:
            backend.bind_graph(graph)
            assert graph.name in repr(backend)
            assert "running=True" in repr(backend)
        finally:
            backend.close()

    def test_repr_states_partition_binding(self, graph):
        backend = ProcessPoolBackend(num_workers=2)
        partition = partition_graph(graph, 3)
        try:
            backend.bind_partition(partition)
            backend.bind_partition(partition)  # idempotent
            assert "partition[3]" in repr(backend)
            with pytest.raises(RuntimeError, match="already bound"):
                backend.bind_graph(graph)
            with pytest.raises(RuntimeError, match="different partition"):
                backend.bind_partition(partition_graph(graph, 2))
        finally:
            backend.close()

    def test_cache_stats_lifecycle(self, graph, queries):
        backend = ProcessPoolBackend(num_workers=2)
        assert backend.cache_stats() is None  # not running yet
        with QueryEngine(MeLoPPRSolver(graph), backend=backend) as engine:
            engine.solve_batch(queries)
            stats = backend.cache_stats()
            assert stats is not None
            assert stats.hits > 0  # repeated seeds hit the worker caches
            assert engine.stats().cache.hits >= stats.hits
        assert backend.cache_stats() is None  # pool closed

    def test_engine_cache_with_process_backend_is_rejected(self, graph):
        # An engine-level cache would never see a lookup (extractions run in
        # the workers) — the dead combination is rejected, like cache+router.
        from repro.serving import SubgraphCache

        backend = ProcessPoolBackend(num_workers=1)
        try:
            with pytest.raises(ValueError, match="cache_bytes"):
                QueryEngine(
                    MeLoPPRSolver(graph), backend=backend, cache=SubgraphCache()
                )
        finally:
            backend.close()

    def test_cache_disabled_reports_none(self, graph, queries):
        backend = ProcessPoolBackend(num_workers=1, cache_bytes=None)
        assert backend.cache_bytes is None
        with QueryEngine(MeLoPPRSolver(graph), backend=backend) as engine:
            results = engine.solve_batch(queries[:2])
            assert backend.cache_stats() is None
            assert engine.stats().cache is None
            assert results[0].metadata["serving"]["cache_enabled"] is False


class TestWorkerCrash:
    def test_killed_workers_raise_instead_of_hanging(self, graph, queries):
        backend = ProcessPoolBackend(num_workers=2)
        engine = QueryEngine(MeLoPPRSolver(graph), backend=backend)
        try:
            engine.solve_batch(queries[:2])  # warm pool
            for worker in backend._workers:
                os.kill(worker.pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashError, match="worker died"):
                run_with_timeout(lambda: engine.solve_batch(queries))
            # The pool stays broken (clear error, not a hang) until closed.
            with pytest.raises(WorkerCrashError):
                run_with_timeout(lambda: engine.solve_batch(queries))
        finally:
            engine.close()

    def test_engine_recovers_after_close(self, graph, queries):
        with QueryEngine(MeLoPPRSolver(graph)) as engine:
            reference = [r.top_k() for r in engine.solve_batch(queries)]
        backend = ProcessPoolBackend(num_workers=2)
        engine = QueryEngine(MeLoPPRSolver(graph), backend=backend)
        try:
            engine.solve_batch(queries[:1])
            for worker in backend._workers:
                os.kill(worker.pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashError):
                run_with_timeout(lambda: engine.solve_batch(queries))
            backend.close()  # reset; binding survives
            results = run_with_timeout(lambda: engine.solve_batch(queries))
            assert [r.top_k() for r in results] == reference
        finally:
            engine.close()

    def test_worker_exceptions_propagate_by_type(self, graph):
        # An invalid stage task (center outside the graph) must surface the
        # original exception type from the worker, not a hang or a crash.
        backend = ProcessPoolBackend(num_workers=1)
        backend.bind_graph(graph)
        try:
            bad = StageTask(0, graph.num_nodes + 7, 2, 1.0, 0.85)
            with pytest.raises(ValueError):
                run_with_timeout(lambda: backend.run_stage_tasks([bad]))
        finally:
            backend.close()


class TestShmLeakRegression:
    """No /dev/shm segment survives a failing batch (ISSUE 4 satellite)."""

    def test_failing_batch_in_context_manager_leaks_nothing(self, graph, queries):
        before = set(leaked_segment_names())
        backend = ProcessPoolBackend(num_workers=2)
        with pytest.raises(WorkerCrashError):
            with QueryEngine(MeLoPPRSolver(graph), backend=backend) as engine:
                engine.solve_batch(queries[:1])
                for worker in backend._workers:
                    os.kill(worker.pid, signal.SIGKILL)
                run_with_timeout(lambda: engine.solve_batch(queries))
        assert set(leaked_segment_names()) - before == set()
        assert not backend.is_running

    def test_close_with_pending_still_releases_backend(self, graph, queries):
        before = set(leaked_segment_names())
        backend = ProcessPoolBackend(num_workers=1)
        engine = QueryEngine(MeLoPPRSolver(graph), backend=backend)
        engine.submit(queries[0])
        with pytest.raises(RuntimeError, match="pending"):
            engine.close()
        # The pending-queries error must not keep worker processes or shared
        # segments alive (close releases the backend in a finally)...
        assert not backend.is_running
        assert set(leaked_segment_names()) - before == set()
        # ...and the queue is intact: draining restarts the pool and answers.
        results = engine.drain()
        assert len(results) == 1
        engine.close()
        assert set(leaked_segment_names()) - before == set()


class TestWorkerStateInProcess:
    """The worker-side execution logic, driven in-process for coverage."""

    def test_host_mode_runs_and_caches(self, graph):
        with SharedGraphHandle.export(graph) as handle:
            state = _WorkerState(handle.descriptor, cache_bytes=1 << 20)
            task = StageTask(0, 5, 3, 1.0, 0.85)
            outcome, timing = state.run_task(task, None)
            assert outcome.cache_hit is False
            again, _ = state.run_task(task, None)
            assert again.cache_hit is True
            assert np.array_equal(
                outcome.diffusion.accumulated, again.diffusion.accumulated
            )
            assert "bfs" in timing and "diffusion" in timing
            counters = state.cache_stats()
            assert counters.hits == 1 and counters.misses == 1

    def test_host_mode_cache_off(self, graph):
        with SharedGraphHandle.export(graph) as handle:
            state = _WorkerState(handle.descriptor, cache_bytes=None)
            outcome, _ = state.run_task(StageTask(0, 5, 2, 1.0, 0.85), None)
            assert outcome.cache_hit is False
            assert state.cache_stats() is None

    def test_reset_cache_stats_zeroes_counters_keeps_entries(self, graph):
        with SharedGraphHandle.export(graph) as handle:
            state = _WorkerState(handle.descriptor, cache_bytes=1 << 20)
            task = StageTask(0, 5, 3, 1.0, 0.85)
            state.run_task(task, None)
            state.reset_cache_stats()
            counters = state.cache_stats()
            assert counters.hits == counters.misses == 0
            # The entry stayed warm: the next lookup is a hit.
            outcome, _ = state.run_task(task, None)
            assert outcome.cache_hit is True

    def test_backend_reset_cache_stats_degrades_when_not_running(self):
        backend = ProcessPoolBackend(num_workers=1)
        backend.reset_cache_stats()  # no workers: bounded no-op, no raise
        cacheless = ProcessPoolBackend(num_workers=1, cache_bytes=None)
        cacheless.reset_cache_stats()

    def test_shard_mode_matches_router(self, graph):
        partition = partition_graph(graph, 3, strategy="hash", halo_depth=3)
        router = ShardRouter(partition, cache_bytes=None)
        handles = [
            SharedShardHandle.export(shard, partition.host.name, partition.halo_depth)
            for shard in partition.shards
        ]
        try:
            state = _WorkerState(
                tuple(handle.descriptor for handle in handles), cache_bytes=1 << 20
            )
            for center in (0, 17, 55):
                shard_id = int(partition.assignments[center])
                task = StageTask(0, center, 3, 1.0, 0.85)
                outcome, _ = state.run_task(task, shard_id)
                expected_sub, expected_bfs, _ = router.extract(graph, center, 3)
                assert np.array_equal(
                    outcome.subgraph.global_ids, expected_sub.global_ids
                )
                assert np.array_equal(
                    outcome.subgraph.graph.indices, expected_sub.graph.indices
                )
                assert outcome.bfs.edges_scanned == expected_bfs.edges_scanned
                # Cache hit on repeat.
                repeat, _ = state.run_task(task, shard_id)
                assert repeat.cache_hit is True
            with pytest.raises(WorkerCrashError, match="does not hold shard"):
                state.run_task(StageTask(0, 0, 1, 1.0, 0.85), 99)
        finally:
            for handle in handles:
                handle.unlink()

    def test_picklable_exception_fallback(self):
        class Unpicklable(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        original = ValueError("fine")
        assert _picklable_exception(original) is original
        substitute = _picklable_exception(Unpicklable("boom"))
        assert isinstance(substitute, RuntimeError)
        assert "Unpicklable" in str(substitute)


class TestRebind:
    """Live-update rebinding: swap the bound topology, respawn cold workers."""

    def test_rebind_graph_swaps_topology(self, graph, queries):
        edge = next(iter(graph.iter_edges()))
        remaining = [e for e in graph.iter_edges() if e != edge]
        updated = type(graph).from_edges(graph.num_nodes, remaining, name=graph.name)
        with ProcessPoolBackend(num_workers=2) as backend:
            backend.bind_graph(graph)
            solver = MeLoPPRSolver(graph)
            run_with_timeout(lambda: backend.map(solver.solve, queries[:2]))
            backend.rebind_graph(updated)
            # Unlike bind_graph, rebinding to a different topology is the
            # whole point; the next dispatch respawns workers on it.
            results = run_with_timeout(
                lambda: backend.map(MeLoPPRSolver(updated).solve, queries[:2])
            )
            expected = MeLoPPRSolver(updated).solve(queries[0])
            assert dict(results[0].scores.items()) == dict(
                expected.scores.items()
            )

    def test_rebind_partition_swaps_partition(self, graph, queries):
        partition = partition_graph(graph, 2, halo_depth=3)
        edge = next(iter(graph.iter_edges()))
        remaining = [e for e in graph.iter_edges() if e != edge]
        updated = type(graph).from_edges(graph.num_nodes, remaining, name=graph.name)
        repartition = partition_graph(updated, 2, halo_depth=3)
        with ProcessPoolBackend(num_workers=2) as backend:
            backend.bind_partition(partition)
            solver = MeLoPPRSolver(graph)
            run_with_timeout(lambda: backend.map(solver.solve, queries[:2]))
            backend.rebind_partition(repartition)
            results = run_with_timeout(
                lambda: backend.map(MeLoPPRSolver(updated).solve, queries[:2])
            )
            expected = MeLoPPRSolver(updated).solve(queries[0])
            assert dict(results[0].scores.items()) == dict(
                expected.scores.items()
            )

    def test_rebind_without_binding_raises(self, graph):
        partition = partition_graph(graph, 2, halo_depth=3)
        with ProcessPoolBackend(num_workers=2) as backend:
            with pytest.raises(RuntimeError, match="bind_graph"):
                backend.rebind_graph(graph)
            with pytest.raises(RuntimeError, match="bind_partition"):
                backend.rebind_partition(partition)
            # Crossing binding kinds is also a rebind error.
            backend.bind_graph(graph)
            with pytest.raises(RuntimeError, match="bind_partition"):
                backend.rebind_partition(partition)
