"""Differential correctness: result caching is bit-identical everywhere.

The cross-query result cache promises that replaying a cached stage-one
table is a pure performance choice: every score an engine produces with the
cache enabled must equal — bitwise, no tolerance — what the uncached serial
path produces, for every backend (``serial``/``thread:N``/``async:N``/
``process:N``), with and without a :class:`~repro.serving.sharding.
ShardRouter`, on hot repeated-seed streams and on interleaved cold/hot
mixes.  This module checks that promise with an exhaustive grid, an async
frontend composition test (in-flight dedup × temporal reuse), and
hypothesis-driven property tests over random graphs and query mixes.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.generators import barabasi_albert_graph, erdos_renyi_graph
from repro.graph.partition import partition_graph
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving import (
    QueryEngine,
    ScoreTableCache,
    ShardRouter,
    SubgraphCache,
    make_backend,
)
from repro.serving.frontend.batcher import BatchPolicy, MicroBatcher

BACKENDS = ("serial", "thread:2", "async:2", "process:2")


def exact_scores(results):
    """Per-query score dicts for bitwise comparison (no tolerance)."""
    return [dict(result.scores.items()) for result in results]


def hot_stream(graph):
    """Repeated hot seeds interleaved with cold one-off queries, mixed k."""
    hot_a = PPRQuery(seed=3, k=25, length=6)
    hot_b = PPRQuery(seed=40, k=25, length=6)
    return [
        hot_a,
        PPRQuery(seed=7, k=25, length=6),  # cold
        hot_a,
        hot_b,
        PPRQuery(seed=3, k=10, length=6),  # hot seed, different k: own entry
        hot_b,
        PPRQuery(seed=55, k=25, length=4),  # cold, shorter walk
        hot_a,
    ]


def solve_cached(graph, queries, backend_spec, sharded):
    """Answer ``queries`` with result caching on, returning (results, stats)."""
    backend = make_backend(backend_spec)
    remote = getattr(backend, "executes_stage_tasks", False)
    if sharded:
        partition = partition_graph(graph, 3, strategy="hash", halo_depth=3)
        router = ShardRouter(partition, result_cache_bytes=16 << 20)
        engine = QueryEngine(MeLoPPRSolver(graph), backend=backend, router=router)
    else:
        engine = QueryEngine(
            MeLoPPRSolver(graph),
            backend=backend,
            cache=None if remote else SubgraphCache(),
            result_cache=ScoreTableCache(),
        )
    with engine:
        results = engine.solve_batch(queries)
        stats = engine.stats()
    return results, stats


class TestBackendRouterGrid:
    """Every backend × sharded/unsharded, bitwise identical to uncached serial."""

    @pytest.fixture(scope="class")
    def graph(self):
        return barabasi_albert_graph(160, 2, rng=13, name="rc-grid")

    @pytest.fixture(scope="class")
    def queries(self, graph):
        return hot_stream(graph)

    @pytest.fixture(scope="class")
    def reference(self, graph, queries):
        solver = MeLoPPRSolver(graph)
        return exact_scores([solver.solve(query) for query in queries])

    @pytest.mark.parametrize("sharded", [False, True], ids=["unsharded", "sharded"])
    @pytest.mark.parametrize("backend_spec", BACKENDS)
    def test_bit_identical_scores(self, graph, queries, reference, backend_spec, sharded):
        results, stats = solve_cached(graph, queries, backend_spec, sharded)
        assert exact_scores(results) == reference
        # The stream was hot, so temporal repeats must have been served from
        # the cache — on concurrent backends duplicates may race and both
        # miss, but a serial backend's hits are exact.
        assert stats.result_cache is not None
        assert stats.result_cache.lookups == len(queries)
        if backend_spec == "serial":
            assert stats.result_cache.hits == 3  # two hot_a + one hot_b repeat
        # The aggregate cache field folds the result cache in.
        assert stats.cache is not None
        assert stats.cache.hits >= stats.result_cache.hits

    def test_second_batch_is_all_hits(self, graph, queries, reference):
        backend = make_backend("serial")
        with QueryEngine(
            MeLoPPRSolver(graph),
            backend=backend,
            cache=SubgraphCache(),
            result_cache=ScoreTableCache(),
        ) as engine:
            engine.solve_batch(queries)
            first = engine.stats().result_cache
            results = engine.solve_batch(queries)
            second = engine.stats().result_cache
        assert exact_scores(results) == reference
        # Every distinct (seed, k, length) was installed by batch one.
        assert second.misses == first.misses
        assert second.hits == first.hits + len(queries)

    def test_metadata_reports_hits_and_misses(self, graph):
        hot = PPRQuery(seed=3, k=25, length=6)
        with QueryEngine(
            MeLoPPRSolver(graph), result_cache=ScoreTableCache()
        ) as engine:
            cold, warm = engine.solve_batch([hot, hot])
        assert cold.metadata["serving"]["result_cache"] == "miss"
        assert warm.metadata["serving"]["result_cache"] == "hit"


class TestFrontendComposition:
    """MicroBatcher dedup (concurrent repeats) × result cache (temporal)."""

    def test_dedup_and_result_cache_compose(self, small_ba_graph):
        hot = PPRQuery(seed=9, k=20, length=6)
        cold = PPRQuery(seed=23, k=20, length=6)
        solver = MeLoPPRSolver(small_ba_graph)
        reference = {
            query: dict(solver.solve(query).scores.items())
            for query in (hot, cold)
        }
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph),
            cache=SubgraphCache(),
            result_cache=ScoreTableCache(),
        )

        async def run():
            policy = BatchPolicy(max_batch_size=4, max_wait_ms=5.0, dedup=True)
            async with MicroBatcher(engine, policy) as batcher:
                # Wave one: concurrent duplicates — dedup computes once.
                wave_one = await asyncio.gather(
                    batcher.submit(hot), batcher.submit(hot), batcher.submit(cold)
                )
                # Wave two: temporal repeats — the result cache serves them.
                wave_two = await asyncio.gather(
                    batcher.submit(hot), batcher.submit(cold)
                )
                return wave_one, wave_two, batcher.stats()

        try:
            wave_one, wave_two, stats = asyncio.run(run())
        finally:
            engine.close()
        for result in (wave_one[0], wave_one[1], wave_two[0]):
            assert dict(result.scores.items()) == reference[hot]
        for result in (wave_one[2], wave_two[1]):
            assert dict(result.scores.items()) == reference[cold]
        # Dedup collapsed the concurrent duplicates...
        assert stats.dedup_hits >= 1
        # ...and the result cache served the temporal ones.
        assert stats.engine.result_cache.hits >= 2


@st.composite
def graph_and_stream(draw):
    """A random small graph plus a query stream with forced repeats."""
    kind = draw(st.sampled_from(["ba", "er"]))
    rng = draw(st.integers(min_value=0, max_value=2**16))
    num_nodes = draw(st.integers(min_value=30, max_value=100))
    if kind == "ba":
        graph = barabasi_albert_graph(
            num_nodes, draw(st.integers(min_value=1, max_value=3)), rng=rng
        )
    else:
        graph = erdos_renyi_graph(
            num_nodes, draw(st.floats(min_value=0.03, max_value=0.12)), rng=rng
        )
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_nodes - 1),
            min_size=1,
            max_size=3,
        )
    )
    length = draw(st.sampled_from([1, 4, 6]))
    queries = [PPRQuery(seed=seed, k=20, length=length) for seed in seeds]
    # Force temporal repeats: replay the stream twice in one batch.
    return graph, queries + queries


class TestPropertyBased:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=graph_and_stream(), sharded=st.booleans())
    def test_random_streams_bit_identical(self, data, sharded):
        graph, queries = data
        solver = MeLoPPRSolver(graph)
        reference = exact_scores([solver.solve(query) for query in queries])
        results, stats = solve_cached(graph, queries, "serial", sharded)
        assert exact_scores(results) == reference
        # The replayed half of the stream must have hit.
        assert stats.result_cache.hits >= len(queries) // 2
