"""Tests for the PPR baselines (local, power iteration, Monte Carlo, NetworkX)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.ppr.local_ppr import LocalPPRSolver
from repro.ppr.metrics import result_precision
from repro.ppr.monte_carlo import MonteCarloSolver
from repro.ppr.networkx_baseline import NetworkXPPRSolver
from repro.ppr.power_iteration import PowerIterationSolver


class TestPPRQuery:
    def test_defaults_match_paper(self):
        query = PPRQuery(seed=0)
        assert query.k == 200
        assert query.length == 6
        assert query.alpha == 0.85

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            PPRQuery(seed=0, k=0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            PPRQuery(seed=0, alpha=1.5)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            PPRQuery(seed=0, length=-1)


class TestLocalPPRSolver:
    def test_top1_is_seed(self, small_ba_graph):
        result = LocalPPRSolver(small_ba_graph).solve_seed(seed=10, k=5)
        assert result.top_k_nodes(1) == [10]

    def test_matches_power_iteration_when_ball_covers_graph(self, small_ba_graph):
        query = PPRQuery(seed=0, k=30, length=6)
        local = LocalPPRSolver(small_ba_graph).solve(query)
        power = PowerIterationSolver(small_ba_graph).solve(query)
        assert result_precision(local, power) == pytest.approx(1.0)

    def test_scores_are_probabilities(self, small_citation_graph):
        result = LocalPPRSolver(small_citation_graph).solve_seed(seed=5, k=10)
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-9)
        assert all(value >= 0 for _, value in result.scores.items())

    def test_metadata_records_subgraph_size(self, small_ba_graph):
        result = LocalPPRSolver(small_ba_graph).solve_seed(seed=3, k=5)
        assert result.metadata["subgraph_nodes"] > 0
        assert result.metadata["subgraph_edges"] >= 0
        assert result.metadata["bfs_edges_scanned"] > 0

    def test_memory_tracking_toggle(self, small_ba_graph):
        tracked = LocalPPRSolver(small_ba_graph, track_memory=True).solve_seed(seed=3)
        untracked = LocalPPRSolver(small_ba_graph, track_memory=False).solve_seed(seed=3)
        assert tracked.peak_memory_bytes > 0
        assert untracked.peak_memory_bytes == untracked.metadata["modelled_bytes"]

    def test_timing_buckets_present(self, small_ba_graph):
        result = LocalPPRSolver(small_ba_graph).solve_seed(seed=3)
        assert {"bfs", "diffusion", "aggregation"} <= set(result.timing.seconds)

    def test_solve_many(self, small_ba_graph):
        solver = LocalPPRSolver(small_ba_graph, track_memory=False)
        queries = [PPRQuery(seed=s, k=5) for s in (0, 1, 2)]
        results = solver.solve_many(queries)
        assert len(results) == 3
        assert all(isinstance(r, PPRResult) for r in results)


class TestPowerIterationSolver:
    def test_scores_sum_to_one(self, small_ba_graph):
        result = PowerIterationSolver(small_ba_graph).solve_seed(seed=0, k=10)
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_iteration_count_recorded(self, small_ba_graph):
        result = PowerIterationSolver(small_ba_graph).solve_seed(seed=0, length=4)
        assert result.metadata["iterations"] == 4

    def test_early_exit_with_tolerance(self, triangle_graph):
        solver = PowerIterationSolver(triangle_graph, max_iterations=500, tolerance=1e-14)
        result = solver.solve_seed(seed=0, k=3)
        assert result.metadata["iterations"] < 500

    def test_invalid_max_iterations(self, triangle_graph):
        with pytest.raises(ValueError):
            PowerIterationSolver(triangle_graph, max_iterations=-1)

    def test_seed_has_highest_score(self, small_citation_graph):
        result = PowerIterationSolver(small_citation_graph).solve_seed(seed=42, k=5)
        assert result.top_k_nodes(1) == [42]


class TestMonteCarloSolver:
    def test_deterministic_given_seeded_rng(self, small_ba_graph):
        a = MonteCarloSolver(small_ba_graph, num_walks=500, rng=3).solve_seed(seed=0, k=10)
        b = MonteCarloSolver(small_ba_graph, num_walks=500, rng=3).solve_seed(seed=0, k=10)
        assert a.top_k_nodes() == b.top_k_nodes()

    def test_estimates_sum_to_one(self, small_ba_graph):
        result = MonteCarloSolver(small_ba_graph, num_walks=200, rng=1).solve_seed(seed=0)
        assert result.scores.sum() == pytest.approx(1.0)

    def test_approximates_power_iteration(self, small_ba_graph):
        query = PPRQuery(seed=0, k=10, length=6)
        exact = PowerIterationSolver(small_ba_graph).solve(query)
        estimate = MonteCarloSolver(small_ba_graph, num_walks=8000, rng=1).solve(query)
        assert result_precision(estimate, exact) >= 0.5

    def test_counts_neighborhood_accesses(self, small_ba_graph):
        result = MonteCarloSolver(small_ba_graph, num_walks=100, rng=1).solve_seed(seed=0)
        assert result.metadata["neighborhood_accesses"] > 0

    def test_rejects_zero_walks(self, small_ba_graph):
        with pytest.raises(ValueError):
            MonteCarloSolver(small_ba_graph, num_walks=0)


class TestNetworkXSolver:
    def test_local_mode_agrees_with_power_iteration(self, small_ba_graph):
        query = PPRQuery(seed=4, k=20, length=6)
        nx_result = NetworkXPPRSolver(small_ba_graph).solve(query)
        power = PowerIterationSolver(small_ba_graph).solve(query)
        assert result_precision(nx_result, power) >= 0.7

    def test_global_mode_runs(self, small_ba_graph):
        result = NetworkXPPRSolver(small_ba_graph, local=False).solve_seed(seed=4, k=10)
        assert len(result.top_k_nodes(5)) == 5

    def test_seed_ranks_first(self, small_citation_graph):
        result = NetworkXPPRSolver(small_citation_graph).solve_seed(seed=7, k=5)
        assert result.top_k_nodes(1) == [7]

    def test_metadata_records_mode(self, small_ba_graph):
        result = NetworkXPPRSolver(small_ba_graph, local=True).solve_seed(seed=1, k=5)
        assert result.metadata["local"] is True


class TestSolverInterface:
    def test_solver_is_abstract(self, triangle_graph):
        with pytest.raises(TypeError):
            PPRSolver(triangle_graph)  # type: ignore[abstract]

    def test_repr_includes_graph_name(self, triangle_graph):
        assert "triangle" in repr(LocalPPRSolver(triangle_graph))

    def test_result_top_k_defaults_to_query_k(self, small_ba_graph):
        result = LocalPPRSolver(small_ba_graph).solve_seed(seed=0, k=7)
        assert len(result.top_k()) <= 7

    def test_elapsed_seconds_positive(self, small_ba_graph):
        result = LocalPPRSolver(small_ba_graph).solve_seed(seed=0, k=5)
        assert result.elapsed_seconds > 0
