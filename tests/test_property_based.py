"""Property-based tests (hypothesis) on the core data structures and invariants.

The invariants exercised here are the ones the whole reproduction leans on:

* graph construction is canonical (builder output independent of edge order,
  no self-loops/duplicates, symmetric adjacency);
* graph diffusion conserves probability mass and is linear in its input;
* the stage-decomposition identity (Eq. 6) holds for arbitrary random graphs,
  stage splits and alpha values;
* top-k selection of the sparse score vector and the bounded global score
  table agree with a brute-force reference.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.diffusion.diffusion import graph_diffusion, seed_vector
from repro.diffusion.sparse_vector import SparseScoreVector
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.meloppr.aggregation import GlobalScoreTable
from repro.meloppr.selection import RatioSelector
from repro.meloppr.stage import split_length, two_stage_diffusion

# Keep the per-example work small: graphs stay under ~40 nodes.
GRAPH_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw, min_nodes=2, max_nodes=40):
    """Strategy producing small connected-ish undirected graphs."""
    num_nodes = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    # A random spanning backbone keeps every node's degree >= 1.
    backbone = [
        (node, draw(st.integers(min_value=0, max_value=node - 1)))
        for node in range(1, num_nodes)
    ]
    extra_count = draw(st.integers(min_value=0, max_value=2 * num_nodes))
    extras = [
        (
            draw(st.integers(min_value=0, max_value=num_nodes - 1)),
            draw(st.integers(min_value=0, max_value=num_nodes - 1)),
        )
        for _ in range(extra_count)
    ]
    builder = GraphBuilder(num_nodes=num_nodes)
    builder.add_edges(backbone + extras)
    return builder.build(name="hypothesis")


class TestGraphConstructionProperties:
    @GRAPH_SETTINGS
    @given(graph=random_graphs())
    def test_adjacency_is_symmetric(self, graph: CSRGraph):
        matrix = graph.to_scipy()
        assert (matrix != matrix.T).nnz == 0

    @GRAPH_SETTINGS
    @given(graph=random_graphs())
    def test_no_self_loops(self, graph: CSRGraph):
        for node in range(graph.num_nodes):
            assert node not in graph.neighbors(node)

    @GRAPH_SETTINGS
    @given(graph=random_graphs())
    def test_neighbor_lists_sorted_and_unique(self, graph: CSRGraph):
        for node in range(graph.num_nodes):
            neighbors = graph.neighbors(node)
            assert np.all(np.diff(neighbors) > 0)

    @GRAPH_SETTINGS
    @given(graph=random_graphs(), data=st.data())
    def test_edge_order_does_not_matter(self, graph: CSRGraph, data):
        edges = list(graph.iter_edges())
        permutation = data.draw(st.permutations(edges))
        rebuilt = GraphBuilder(num_nodes=graph.num_nodes).add_edges(permutation).build()
        assert rebuilt == graph

    @GRAPH_SETTINGS
    @given(graph=random_graphs())
    def test_degree_sum_equals_twice_edges(self, graph: CSRGraph):
        assert int(graph.degrees().sum()) == 2 * graph.num_edges


class TestDiffusionProperties:
    @GRAPH_SETTINGS
    @given(
        graph=random_graphs(),
        alpha=st.floats(min_value=0.0, max_value=1.0),
        length=st.integers(min_value=0, max_value=6),
        data=st.data(),
    )
    def test_mass_conservation(self, graph, alpha, length, data):
        seed = data.draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
        result = graph_diffusion(graph, seed_vector(graph.num_nodes, seed), length, alpha)
        # Graphs from the strategy have min degree >= 1, so no mass is lost.
        assert result.accumulated.sum() == pytest.approx(1.0, abs=1e-9)
        assert (result.accumulated >= -1e-12).all()

    @GRAPH_SETTINGS
    @given(
        graph=random_graphs(),
        alpha=st.floats(min_value=0.05, max_value=0.95),
        total_length=st.integers(min_value=2, max_value=6),
        data=st.data(),
    )
    def test_stage_decomposition_identity(self, graph, alpha, total_length, data):
        """Eq. 6 holds for arbitrary graphs, splits and decay factors."""
        l1 = data.draw(st.integers(min_value=1, max_value=total_length - 1))
        l2 = total_length - l1
        seed = data.draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
        initial = seed_vector(graph.num_nodes, seed)
        direct = graph_diffusion(graph, initial, total_length, alpha).accumulated
        decomposed = two_stage_diffusion(graph, initial, l1, l2, alpha)
        np.testing.assert_allclose(decomposed, direct, atol=1e-9)

    @GRAPH_SETTINGS
    @given(graph=random_graphs(), data=st.data())
    def test_linearity(self, graph, data):
        n = graph.num_nodes
        a = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=1.0), min_size=n, max_size=n
                )
            )
        )
        b = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=1.0), min_size=n, max_size=n
                )
            )
        )
        combined = graph_diffusion(graph, a + b, 3, 0.85).accumulated
        separate = (
            graph_diffusion(graph, a, 3, 0.85).accumulated
            + graph_diffusion(graph, b, 3, 0.85).accumulated
        )
        np.testing.assert_allclose(combined, separate, atol=1e-8)


class TestSplitLengthProperties:
    @given(
        total=st.integers(min_value=1, max_value=64),
        stages=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_split_sums_back(self, total, stages):
        if stages > total:
            with pytest.raises(ValueError):
                split_length(total, stages)
            return
        parts = split_length(total, stages)
        assert sum(parts) == total
        assert len(parts) == stages
        assert max(parts) - min(parts) <= 1


class TestScoreContainerProperties:
    @given(
        entries=st.dictionaries(
            st.integers(min_value=0, max_value=500),
            st.floats(min_value=0.0, max_value=1.0),
            max_size=60,
        ),
        k=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_sparse_vector_top_k_matches_bruteforce(self, entries, k):
        vector = SparseScoreVector(entries)
        expected = sorted(entries.items(), key=lambda item: (-item[1], item[0]))[:k]
        assert vector.top_k(k) == expected

    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            max_size=80,
        ),
        k=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_unbounded_table_matches_dict_accumulation(self, updates, k):
        table = GlobalScoreTable()
        reference: dict[int, float] = {}
        for node, value in updates:
            table.add(node, value)
            reference[node] = reference.get(node, 0.0) + value
        expected = sorted(reference.items(), key=lambda item: (-item[1], item[0]))[:k]
        assert table.top_k_nodes(k) == [node for node, _ in expected]

    @given(
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.floats(min_value=0.01, max_value=1.0),
            ),
            max_size=60,
        ),
        capacity=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_table_never_exceeds_capacity(self, updates, capacity):
        table = GlobalScoreTable(capacity=capacity)
        for node, value in updates:
            table.add(node, value)
        assert table.num_entries <= capacity


class TestSelectorProperties:
    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50),
        ratio=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_ratio_selector_size_and_order(self, values, ratio):
        nodes = np.arange(len(values))
        residuals = np.asarray(values)
        selected = RatioSelector(ratio).select(nodes, residuals)
        assert selected.size <= len(values)
        picked_values = [residuals[node] for node in selected]
        assert picked_values == sorted(picked_values, reverse=True)
        # Every selected node has residual >= every unselected node.
        unselected = set(nodes.tolist()) - set(selected.tolist())
        if selected.size and unselected:
            assert min(picked_values) >= max(residuals[list(unselected)]) - 1e-12
