"""Smoke and schema tests for the serving studies (E9, E10) and their benches.

The benchmark scripts promise a stable JSON shape (consumed by CI and any
dashboarding downstream), so these tests run the studies with tiny parameters
and validate the emitted documents: keys, types, and rates inside [0, 1].
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.experiments.serving_study import format_serving, run_serving_study
from repro.experiments.sharding_study import format_sharding, run_sharding_study

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def load_bench_module(name):
    """Import a benchmark script by file path (benchmarks/ is not a package)."""
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def assert_rate(value):
    assert isinstance(value, float)
    assert 0.0 <= value <= 1.0


class TestServingStudySchema:
    @pytest.fixture(scope="class")
    def study(self):
        return run_serving_study(num_seeds=2, repeat_factor=2, num_workers=2)

    def test_runs_cover_the_four_configurations(self, study):
        labels = [run.label for run in study.runs]
        assert labels == [
            "serial-cold",
            "serial-cached",
            "threads2-cold",
            "threads2-cached",
        ]
        assert study.baseline.label == "serial-cold"

    def test_as_dict_schema(self, study):
        payload = study.as_dict()
        assert set(payload) == {
            "dataset",
            "num_seeds",
            "repeat_factor",
            "num_workers",
            "k",
            "runs",
        }
        assert isinstance(payload["dataset"], str)
        assert isinstance(payload["num_seeds"], int)
        assert len(payload["runs"]) == 4
        for run in payload["runs"]:
            assert isinstance(run["label"], str)
            assert isinstance(run["backend"], str)
            assert isinstance(run["cache_enabled"], bool)
            assert isinstance(run["num_queries"], int) and run["num_queries"] > 0
            assert isinstance(run["wall_seconds"], float) and run["wall_seconds"] >= 0
            assert isinstance(run["throughput_qps"], float) and run["throughput_qps"] >= 0
            assert isinstance(run["mean_latency_seconds"], float)
            assert isinstance(run["speedup_vs_baseline"], float)
            if run["cache_enabled"]:
                assert_rate(run["cache_hit_rate"])
            else:
                assert run["cache_hit_rate"] is None

    def test_json_round_trip(self, study):
        document = json.dumps(study.as_dict())
        assert json.loads(document)["runs"]

    def test_format_mentions_experiment(self, study):
        text = format_serving(study)
        assert "E9" in text
        assert "serial-cold" in text


class TestShardingStudySchema:
    @pytest.fixture(scope="class")
    def study(self):
        return run_sharding_study(
            num_seeds=2, repeat_factor=2, shard_counts=(2,), strategies=("hash",)
        )

    def test_as_dict_schema(self, study):
        payload = study.as_dict()
        assert payload["halo_depth"] == 3
        assert isinstance(payload["unsharded_qps"], float)
        assert len(payload["runs"]) == 1
        (run,) = payload["runs"]
        assert run["label"] == "hash-s2"
        assert run["num_shards"] == 2
        assert_rate(run["cache_hit_rate"])
        assert_rate(run["cross_shard_fallback_rate"])
        assert len(run["per_shard_hit_rates"]) == 2
        for rate in run["per_shard_hit_rates"]:
            assert_rate(rate)
        assert isinstance(run["halo_overhead_bytes"], int)
        assert run["replication_factor"] >= 1.0

    def test_format_mentions_experiment(self, study):
        assert "E10" in format_sharding(study)


class TestServingBenchScript:
    @pytest.fixture(scope="class")
    def bench(self):
        return load_bench_module("bench_serving_throughput")

    def test_study_json_schema(self, bench):
        study = bench.run_benchmark(num_seeds=2, repeat_factor=2)
        payload = json.loads(bench.study_json(study))
        assert len(payload["runs"]) == 4
        cached = [run for run in payload["runs"] if run["cache_enabled"]]
        assert cached
        for run in cached:
            assert_rate(run["cache_hit_rate"])

    def test_main_writes_json_file(self, bench, tmp_path):
        out = tmp_path / "serving.json"
        code = bench.main(
            ["--num-seeds", "2", "--repeat-factor", "2", "--json", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["num_seeds"] == 2
        assert len(payload["runs"]) == 4


class TestShardedBenchScript:
    @pytest.fixture(scope="class")
    def bench(self):
        return load_bench_module("bench_sharded_serving")

    def test_main_writes_json_file(self, bench, tmp_path):
        out = tmp_path / "sharded.json"
        code = bench.main(
            [
                "--num-seeds",
                "2",
                "--repeat-factor",
                "2",
                "--shard-counts",
                "2",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["dataset"] == "G1"
        for run in payload["runs"]:
            assert_rate(run["cache_hit_rate"])
            assert_rate(run["cross_shard_fallback_rate"])
            assert len(run["per_shard_hit_rates"]) == run["num_shards"]
