"""Tests for repro.graph.csr."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.graph.csr import CSRGraph


class TestConstruction:
    def test_from_edges_basic(self, triangle_graph):
        assert triangle_graph.num_nodes == 3
        assert triangle_graph.num_edges == 3
        assert triangle_graph.num_directed_edges == 6

    def test_size_is_nodes_plus_edges(self, triangle_graph):
        assert triangle_graph.size == 6

    def test_from_edges_drops_self_loops(self):
        graph = CSRGraph.from_edges(3, [(0, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_from_edges_drops_duplicates(self):
        graph = CSRGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_from_scipy_symmetrises(self):
        matrix = sparse.csr_matrix(np.array([[0, 1, 0], [0, 0, 0], [0, 0, 0]]))
        graph = CSRGraph.from_scipy(matrix)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)

    def test_from_scipy_rejects_non_square(self):
        with pytest.raises(ValueError):
            CSRGraph.from_scipy(sparse.csr_matrix(np.ones((2, 3))))

    def test_invalid_indptr_start(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0], dtype=np.int32))

    def test_indptr_indices_mismatch(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([0], dtype=np.int32))

    def test_indices_out_of_range(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5], dtype=np.int32))

    def test_non_monotone_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2], dtype=np.int32))

    def test_empty_graph(self):
        graph = CSRGraph(np.array([0]), np.array([], dtype=np.int32))
        assert graph.num_nodes == 0
        assert graph.num_edges == 0


class TestNeighborhoods:
    def test_degree(self, star_graph):
        assert star_graph.degree(0) == 6
        assert star_graph.degree(1) == 1

    def test_degrees_array(self, star_graph):
        degrees = star_graph.degrees()
        assert degrees[0] == 6
        assert degrees.sum() == 12

    def test_neighbors_sorted(self, triangle_graph):
        assert list(triangle_graph.neighbors(0)) == [1, 2]

    def test_neighbors_out_of_range(self, triangle_graph):
        with pytest.raises(ValueError):
            triangle_graph.neighbors(5)

    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(0, 1)
        assert not path_graph.has_edge(0, 2)

    def test_iter_edges_each_once(self, triangle_graph):
        edges = list(triangle_graph.iter_edges())
        assert sorted(edges) == [(0, 1), (0, 2), (1, 2)]

    def test_edge_array_matches_iter_edges(self, small_ba_graph):
        from_iter = sorted(small_ba_graph.iter_edges())
        from_array = sorted(map(tuple, small_ba_graph.edge_array().tolist()))
        assert from_iter == from_array


class TestConversions:
    def test_to_scipy_roundtrip(self, triangle_graph):
        matrix = triangle_graph.to_scipy()
        rebuilt = CSRGraph.from_scipy(matrix)
        assert rebuilt == triangle_graph

    def test_to_scipy_symmetric(self, small_ba_graph):
        matrix = small_ba_graph.to_scipy()
        assert (matrix != matrix.T).nnz == 0

    def test_to_networkx(self, path_graph):
        nx_graph = path_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 5
        assert nx_graph.number_of_edges() == 4

    def test_nbytes_positive(self, triangle_graph):
        assert triangle_graph.nbytes() > 0


class TestDunder:
    def test_len_is_num_nodes(self, star_graph):
        assert len(star_graph) == 7

    def test_repr_mentions_name(self, triangle_graph):
        assert "triangle" in repr(triangle_graph)

    def test_equality(self):
        a = CSRGraph.from_edges(3, [(0, 1)])
        b = CSRGraph.from_edges(3, [(0, 1)])
        c = CSRGraph.from_edges(3, [(1, 2)])
        assert a == b
        assert a != c

    def test_equality_with_other_type(self, triangle_graph):
        assert (triangle_graph == 42) is False or (triangle_graph == 42) is NotImplemented

    def test_arrays_are_read_only(self, triangle_graph):
        with pytest.raises(ValueError):
            triangle_graph.indices[0] = 2


class TestFingerprint:
    def test_equal_structure_equal_fingerprint(self):
        a = CSRGraph.from_edges(4, [(0, 1), (1, 2)], name="first")
        b = CSRGraph.from_edges(4, [(0, 1), (1, 2)], name="rebuilt-elsewhere")
        # The name is excluded on purpose: a rebuilt identical graph IS the
        # same graph as far as derived caches are concerned.
        assert a.fingerprint() == b.fingerprint()

    def test_topology_change_changes_fingerprint(self):
        base = CSRGraph.from_edges(4, [(0, 1), (1, 2)])
        extra_edge = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        extra_node = CSRGraph.from_edges(5, [(0, 1), (1, 2)])
        assert base.fingerprint() != extra_edge.fingerprint()
        assert base.fingerprint() != extra_node.fingerprint()

    def test_fingerprint_is_memoised(self, triangle_graph):
        assert triangle_graph.fingerprint() is triangle_graph.fingerprint()
        assert len(triangle_graph.fingerprint()) == 32


class TestHashContract:
    """``__hash__`` must agree with the structural ``__eq__``.

    Regression: hashing used to fall back to object identity, so two equal
    rebuilt graphs landed in different dict/set buckets and fingerprint-keyed
    memo tables silently duplicated (or missed) entries.
    """

    def test_equal_rebuilt_graphs_hash_equal(self):
        a = CSRGraph.from_edges(4, [(0, 1), (1, 2)], name="first")
        b = CSRGraph.from_edges(4, [(0, 1), (1, 2)], name="rebuilt-elsewhere")
        assert a == b
        assert hash(a) == hash(b)
        # The dict/set contract actually holds: equal graphs collide.
        assert len({a, b}) == 1
        table = {a: "cached"}
        assert table[b] == "cached"

    def test_hash_derives_from_fingerprint(self, triangle_graph):
        assert hash(triangle_graph) == hash(triangle_graph.fingerprint())

    def test_different_topology_distinct_in_sets(self):
        a = CSRGraph.from_edges(3, [(0, 1)])
        c = CSRGraph.from_edges(3, [(1, 2)])
        assert len({a, c}) == 2
