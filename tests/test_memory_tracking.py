"""Tests for repro.memory (tracemalloc tracker and reporting helpers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory.report import (
    MemorySummary,
    bytes_to_megabytes,
    reduction_factor,
    summarize_bytes,
)
from repro.memory.tracker import MemoryTracker


class TestMemoryTracker:
    def test_measures_allocation(self):
        tracker = MemoryTracker()
        with tracker:
            payload = np.zeros(1_000_000, dtype=np.float64)
            del payload
        assert tracker.peak_bytes >= 8 * 1_000_000 * 0.9

    def test_disabled_tracker_reports_zero(self):
        tracker = MemoryTracker(enabled=False)
        with tracker:
            _ = np.zeros(100_000)
        assert tracker.peak_bytes == 0

    def test_peak_megabytes(self):
        tracker = MemoryTracker()
        with tracker:
            _ = bytearray(2 * 1024 * 1024)
        assert tracker.peak_megabytes >= 1.5

    def test_nested_trackers(self):
        outer = MemoryTracker()
        inner = MemoryTracker()
        with outer:
            _ = bytearray(512 * 1024)
            with inner:
                _ = bytearray(1024 * 1024)
        assert inner.peak_bytes >= 1024 * 1024 * 0.9
        assert outer.peak_bytes >= inner.peak_bytes * 0.5

    def test_sequential_measurements_independent(self):
        first = MemoryTracker()
        with first:
            _ = bytearray(1024 * 1024)
        second = MemoryTracker()
        with second:
            _ = bytearray(64)
        assert second.peak_bytes < first.peak_bytes

    def test_enabled_property(self):
        assert MemoryTracker(enabled=False).enabled is False


class TestSummarizeBytes:
    def test_basic_summary(self):
        summary = summarize_bytes([1.0, 3.0, 2.0])
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.mean == 2.0
        assert summary.count == 3

    def test_empty_summary(self):
        summary = summarize_bytes([])
        assert summary == MemorySummary(0.0, 0.0, 0.0, 0)

    def test_megabyte_properties(self):
        summary = summarize_bytes([1024 * 1024])
        assert summary.mean_mb == pytest.approx(1.0)
        assert summary.minimum_mb == pytest.approx(1.0)
        assert summary.maximum_mb == pytest.approx(1.0)


class TestReductionFactor:
    def test_basic(self):
        assert reduction_factor(100.0, 10.0) == pytest.approx(10.0)

    def test_below_one_means_regression(self):
        assert reduction_factor(5.0, 10.0) == pytest.approx(0.5)

    def test_zero_optimized_is_infinite(self):
        assert reduction_factor(10.0, 0.0) == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            reduction_factor(-1.0, 1.0)

    def test_bytes_to_megabytes(self):
        assert bytes_to_megabytes(2 * 1024 * 1024) == pytest.approx(2.0)
