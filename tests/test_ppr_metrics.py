"""Tests for repro.ppr.metrics."""

from __future__ import annotations

import pytest

from repro.diffusion.sparse_vector import SparseScoreVector
from repro.ppr.base import PPRQuery, PPRResult
from repro.ppr.metrics import (
    average_precision_over_seeds,
    precision_at_k,
    rank_agreement,
    recall_at_k,
    result_precision,
    score_l1_error,
)


def _result(scores: dict, k: int = 3) -> PPRResult:
    return PPRResult(query=PPRQuery(seed=0, k=k), scores=SparseScoreVector(scores))


class TestPrecisionAtK:
    def test_perfect_match(self):
        assert precision_at_k([1, 2, 3], [3, 2, 1], 3) == 1.0

    def test_partial_overlap(self):
        assert precision_at_k([1, 2, 3, 4], [1, 2, 9, 8], 4) == pytest.approx(0.5)

    def test_no_overlap(self):
        assert precision_at_k([1, 2], [3, 4], 2) == 0.0

    def test_only_first_k_considered(self):
        assert precision_at_k([1, 2, 3], [1, 9, 9], 1) == 1.0

    def test_shorter_approximation_penalised(self):
        # Only one of the two requested nodes was produced and it is correct.
        assert precision_at_k([1], [1, 2], 2) == pytest.approx(0.5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k([1], [1], 0)

    def test_both_empty(self):
        assert precision_at_k([], [], 5) == 1.0


class TestRecallAtK:
    def test_recall_full(self):
        assert recall_at_k([1, 2, 3], [2, 3], 3) == 1.0

    def test_recall_partial(self):
        assert recall_at_k([1], [1, 2], 2) == pytest.approx(0.5)

    def test_recall_empty_reference(self):
        assert recall_at_k([1, 2], [], 2) == 1.0


class TestResultPrecision:
    def test_uses_query_k_by_default(self):
        approx = _result({1: 0.9, 2: 0.8, 3: 0.7})
        exact = _result({1: 0.9, 2: 0.8, 4: 0.7})
        assert result_precision(approx, exact) == pytest.approx(2 / 3)

    def test_explicit_k(self):
        approx = _result({1: 0.9, 2: 0.8})
        exact = _result({1: 0.9, 5: 0.8})
        assert result_precision(approx, exact, k=1) == 1.0

    def test_average_over_seeds(self):
        approx = [_result({1: 1.0}, k=1), _result({2: 1.0}, k=1)]
        exact = [_result({1: 1.0}, k=1), _result({3: 1.0}, k=1)]
        assert average_precision_over_seeds(approx, exact) == pytest.approx(0.5)

    def test_average_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            average_precision_over_seeds([_result({1: 1.0})], [])

    def test_average_empty_is_zero(self):
        assert average_precision_over_seeds([], []) == 0.0


class TestRankAgreement:
    def test_identical_order(self):
        assert rank_agreement([1, 2, 3], [1, 2, 3], 3) == 1.0

    def test_reversed_order(self):
        assert rank_agreement([3, 2, 1], [1, 2, 3], 3) == -1.0

    def test_disjoint_sets(self):
        assert rank_agreement([1, 2], [3, 4], 2) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            rank_agreement([1], [1], 0)


class TestScoreL1Error:
    def test_identical_vectors(self):
        a = SparseScoreVector({1: 0.5, 2: 0.5})
        assert score_l1_error(a, a.copy()) == 0.0

    def test_disjoint_vectors(self):
        a = SparseScoreVector({1: 0.5})
        b = SparseScoreVector({2: 0.5})
        assert score_l1_error(a, b) == pytest.approx(1.0)

    def test_partial_difference(self):
        a = SparseScoreVector({1: 0.6})
        b = SparseScoreVector({1: 0.5})
        assert score_l1_error(a, b) == pytest.approx(0.1)
