"""Tests for repro.graph.io (SNAP edge-list reading/writing)."""

from __future__ import annotations

import gzip

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.io import read_edge_list, read_snap_graph, write_edge_list


class TestReadEdgeList:
    def test_basic_read(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a\n\n0 1\n\n# b\n2 3\n")
        assert read_edge_list(path).num_edges == 2

    def test_relabelling_sparse_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("10 20\n20 30\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 3

    def test_no_relabel_uses_max_id(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 5\n")
        graph = read_edge_list(path, relabel=False)
        assert graph.num_nodes == 6

    def test_tab_separated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\t1\n1\t2\n")
        assert read_edge_list(path).num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 0

    def test_gzip_support(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0 1\n1 2\n")
        assert read_edge_list(path).num_edges == 2

    def test_default_name_is_stem(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert read_edge_list(path).name == "mygraph"

    def test_snap_alias(self):
        assert read_snap_graph is read_edge_list


class TestWriteEdgeList:
    def test_roundtrip(self, tmp_path):
        original = GraphBuilder(num_nodes=5).add_path(range(5)).build(name="p")
        path = tmp_path / "out.txt"
        write_edge_list(original, path)
        rebuilt = read_edge_list(path, relabel=False)
        assert rebuilt == original

    def test_header_contains_counts(self, tmp_path):
        graph = GraphBuilder(num_nodes=3).add_edge(0, 1).build()
        path = tmp_path / "out.txt"
        write_edge_list(graph, path)
        text = path.read_text()
        assert "Nodes: 3" in text
        assert "Edges: 1" in text

    def test_no_header(self, tmp_path):
        graph = GraphBuilder(num_nodes=3).add_edge(0, 1).build()
        path = tmp_path / "out.txt"
        write_edge_list(graph, path, header=False)
        assert not path.read_text().startswith("#")

    def test_gzip_roundtrip(self, tmp_path):
        graph = GraphBuilder(num_nodes=4).add_cycle(range(4)).build()
        path = tmp_path / "out.txt.gz"
        write_edge_list(graph, path)
        assert read_edge_list(path, relabel=False) == graph
