"""Tests for the PE cycle model, the scheduler and the transfer model."""

from __future__ import annotations

import pytest

from repro.hardware.data_transfer import TransferModel
from repro.hardware.pe import DiffusionTask, PECycleCosts, ProcessingElement
from repro.hardware.scheduler import (
    Scheduler,
    assign_tasks,
    conflict_probability,
    conflict_stall_cycles,
)


def make_task(task_id=0, stage=1, nodes=100, edges=300, propagations=900, length=3):
    return DiffusionTask(
        task_id=task_id,
        stage_index=stage,
        subgraph_nodes=nodes,
        subgraph_edges=edges,
        propagations=propagations,
        length=length,
        bfs_edges_scanned=edges,
    )


class TestDiffusionTask:
    def test_bram_bytes_formula(self):
        task = make_task(nodes=10, edges=20)
        assert task.bram_bytes == 4 * (2 * 10 + 2 * 20 + 2 * 10 + 10)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            make_task(nodes=0)

    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            make_task(propagations=-1)


class TestProcessingElement:
    def test_cycles_scale_with_work(self):
        pe = ProcessingElement()
        small = pe.execute(make_task(propagations=100))
        large = pe.execute(make_task(propagations=10_000))
        assert large.diffusion_cycles > small.diffusion_cycles

    def test_total_cycles_is_sum_of_phases(self):
        report = ProcessingElement().execute(make_task())
        assert report.total_cycles == pytest.approx(
            report.load_cycles + report.diffusion_cycles + report.aggregation_cycles
        )

    def test_custom_costs_respected(self):
        costs = PECycleCosts(cycles_per_edge=10.0)
        fast = ProcessingElement().execute(make_task())
        slow = ProcessingElement(costs).execute(make_task())
        assert slow.diffusion_cycles > fast.diffusion_cycles

    def test_writes_include_node_updates(self):
        task = make_task(nodes=50, propagations=200, length=3)
        report = ProcessingElement().execute(task)
        assert report.score_table_writes == 200 + 50 * 3


class TestConflictModel:
    def test_no_conflict_at_p1(self):
        assert conflict_probability(1) == 0.0

    def test_bounded_below_half(self):
        for parallelism in (2, 4, 8, 16, 64):
            assert 0.0 < conflict_probability(parallelism) < 0.5

    def test_monotone_in_parallelism(self):
        values = [conflict_probability(p) for p in (2, 4, 8, 16)]
        assert values == sorted(values)

    def test_paper_overhead_bounds(self):
        """Sched. overhead fraction p/(1+p): <20% at P=2, <40% for larger P."""
        for parallelism, bound in ((2, 0.20), (4, 0.40), (8, 0.40), (16, 0.40)):
            probability = conflict_probability(parallelism)
            assert probability / (1 + probability) <= bound

    def test_stall_cycles_scaling(self):
        assert conflict_stall_cycles(1000, 2) == pytest.approx(250.0)
        assert conflict_stall_cycles(0, 8) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            conflict_probability(0)
        with pytest.raises(ValueError):
            conflict_stall_cycles(-1, 2)


class TestAssignTasks:
    def test_round_robin_like_balance(self):
        tasks = [make_task(task_id=i) for i in range(8)]
        assignment = assign_tasks(tasks, 4)
        used_pes = {pe for pe, _ in assignment}
        assert used_pes == {0, 1, 2, 3}

    def test_single_pe_gets_everything(self):
        tasks = [make_task(task_id=i) for i in range(3)]
        assert all(pe == 0 for pe, _ in assign_tasks(tasks, 1))

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            assign_tasks([], 0)


class TestScheduler:
    def test_empty_task_list(self):
        result = Scheduler(4).run([])
        assert result.makespan_cycles == 0.0
        assert result.num_tasks == 0

    def test_stage_one_splits_across_pes(self):
        task = make_task(stage=0, propagations=16_000)
        serial = Scheduler(1).run([task])
        parallel = Scheduler(16).run([task])
        assert parallel.makespan_cycles < serial.makespan_cycles / 4

    def test_later_tasks_fill_pes(self):
        tasks = [make_task(task_id=i) for i in range(16)]
        serial = Scheduler(1).run(tasks)
        parallel = Scheduler(16).run(tasks)
        assert parallel.makespan_cycles < serial.makespan_cycles / 4

    def test_makespan_never_below_single_task(self):
        tasks = [make_task(task_id=i) for i in range(4)]
        single_cycles = ProcessingElement().execute(tasks[0]).total_cycles
        result = Scheduler(8).run(tasks)
        assert result.makespan_cycles >= single_cycles

    def test_scheduling_cycles_zero_at_p1(self):
        tasks = [make_task(task_id=i) for i in range(4)]
        assert Scheduler(1).run(tasks).scheduling_cycles == 0.0

    def test_scheduling_cycles_grow_with_parallelism(self):
        tasks = [make_task(task_id=i) for i in range(32)]
        p2 = Scheduler(2).run(tasks)
        p16 = Scheduler(16).run(tasks)
        assert p16.scheduling_cycles >= 0.0
        assert p2.scheduling_cycles >= 0.0
        # Per-write conflict probability grows with P.
        assert (
            p16.scheduling_cycles / p16.diffusion_cycles
            >= p2.scheduling_cycles / p2.diffusion_cycles
        )

    def test_pe_utilisation_fractions(self):
        tasks = [make_task(task_id=i) for i in range(8)]
        result = Scheduler(4).run(tasks)
        utilisation = result.pe_utilisation()
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in utilisation.values())

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            Scheduler(0)


class TestTransferModel:
    def test_transfer_seconds_includes_latency(self):
        model = TransferModel()
        assert model.transfer_seconds(0) == pytest.approx(model.device.pcie_latency_s)

    def test_transfer_seconds_scale_with_bytes(self):
        model = TransferModel()
        assert model.transfer_seconds(10**6) > model.transfer_seconds(10**3)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            TransferModel().transfer_seconds(-1)

    def test_result_download_bytes(self):
        assert TransferModel().result_download_bytes(200) == 1600

    def test_query_report_aggregates(self):
        model = TransferModel()
        report = model.query_report([(100, 300), (50, 120)], num_next_stage_nodes=5, k=200)
        assert report.upload_bytes == model.subgraph_upload_bytes(
            100, 300
        ) + model.subgraph_upload_bytes(50, 120)
        assert report.download_bytes == model.next_stage_download_bytes(
            5
        ) + model.result_download_bytes(200)
        assert report.num_transfers == 4
        assert report.seconds > 0

    def test_query_report_no_next_stage(self):
        report = TransferModel().query_report([(10, 10)], num_next_stage_nodes=0, k=10)
        assert report.num_transfers == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TransferModel().result_download_bytes(0)
