"""``ReplicaRouter``: routing, failover, drain, and metrics accounting.

Most tests run against in-process ``HttpQueryServer`` replicas (fast,
deterministic); the crash-failover acceptance test at the bottom runs
a real ``ReplicaSet`` of subprocesses and SIGKILLs one under load —
zero dropped queries, every answer bit-identical to the serial
reference, and the router's counters account for every retry.
"""

from __future__ import annotations

import asyncio
import signal
from contextlib import AsyncExitStack

import pytest

from repro.serving.frontend import (
    HttpQueryServer,
    MicroBatcher,
    ReplicaRouter,
    ServingConfig,
    build_frontend,
    parse_prometheus_text,
)
from repro.serving.frontend.http import HttpClientPool
from repro.serving.frontend.router import (
    DEAD,
    DRAINING,
    HEALTHY,
    INCOMPATIBLE,
    SUSPECT,
)
from repro.serving.replica import ReplicaSet

CONFIG = ServingConfig(
    dataset="G1", backend="serial", num_shards=4, max_wait_ms=0.5
)


class InProcessFleet:
    """N real HttpQueryServers over one dataset, addressable like replicas."""

    def __init__(self, count: int, config: ServingConfig = CONFIG) -> None:
        self.count = count
        self.config = config
        self.servers = []
        self.endpoints = []
        self._stack = AsyncExitStack()

    async def __aenter__(self):
        for _ in range(self.count):
            engine, policy, admission = build_frontend(self.config)
            batcher = await self._stack.enter_async_context(
                MicroBatcher(engine, policy, admission)
            )
            server = HttpQueryServer(batcher, "127.0.0.1", 0)
            await self._stack.enter_async_context(server)
            self.servers.append(server)
            self.endpoints.append(server.address)
        return self

    async def __aexit__(self, exc_type, exc, traceback):
        await self._stack.aclose()

    async def crash(self, index: int):
        """Stop one server's listener and abort its connections."""
        server = self.servers[index]
        await server.stop()
        # A closed listener alone does not sever established keep-alive
        # connections; kill them so clients see the "crash" immediately.
        for task in list(server._conn_tasks):
            task.cancel()
        await asyncio.gather(*server._conn_tasks, return_exceptions=True)


def run(coro):
    asyncio.run(coro)


@pytest.fixture(scope="module")
def reference_answers():
    """Serial-engine answers for the query mix every test replays."""
    engine, _, _ = build_frontend(CONFIG.replace(backend="serial"))
    try:
        from repro.ppr.base import PPRQuery

        answers = {}
        for seed in range(24):
            result = engine.solve_batch([PPRQuery(seed=seed, k=50)])[0]
            answers[seed] = [[int(n), float(s)] for n, s in result.top_k()]
        return answers
    finally:
        engine.close()


class TestRouting:
    def test_routes_by_owner_and_answers_bit_identically(
        self, reference_answers
    ):
        async def main():
            async with InProcessFleet(3) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints, num_shards=4, health_interval_s=0
                )
                async with router:
                    async with HttpClientPool(*router.address) as pool:
                        for seed, expected in reference_answers.items():
                            status, payload = await pool.request_json(
                                "POST", "/query", {"seed": seed, "k": 50}
                            )
                            assert status == 200 and payload["ok"]
                            assert payload["top"] == expected
                        # With everyone healthy, every query lands on its
                        # ring owner: zero failovers, zero retries.
                        stats = router._router_stats()
                        assert stats["queries"] == len(reference_answers)
                        assert sum(stats["retries"].values()) == 0
                        assert sum(stats["failovers"].values()) == 0
                        for seed in reference_answers:
                            owner = router.owner_of(seed)
                            assert stats["answers"][owner] > 0
                    await router.stop()

        run(main())

    def test_same_shard_seeds_share_a_replica(self):
        async def main():
            async with InProcessFleet(2) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints, num_shards=4, health_interval_s=0
                )
                # Pure function of the ring: no serving needed.
                from repro.graph.partition import hash_shard_of

                by_shard = {}
                for seed in range(200):
                    shard = hash_shard_of(seed, 4)
                    by_shard.setdefault(shard, set()).add(
                        router.owner_of(seed)
                    )
                for shard, owners in by_shard.items():
                    assert len(owners) == 1, (shard, owners)

        run(main())

    def test_bad_seed_is_bad_request_not_a_forward(self):
        async def main():
            async with InProcessFleet(1) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints, num_shards=4, health_interval_s=0
                )
                async with router:
                    async with HttpClientPool(*router.address) as pool:
                        for body in ({"k": 5}, {"seed": True}, {"seed": "x"}):
                            status, payload = await pool.request_json(
                                "POST", "/query", body
                            )
                            assert status == 400
                            assert payload["error"] == "bad_request"
                        assert sum(router._forwards.values()) == 0
                    await router.stop()

        run(main())

    def test_replica_rejection_is_forwarded_not_retried(self):
        async def main():
            async with InProcessFleet(2) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints,
                    num_shards=4,
                    health_interval_s=0,
                    retries=5,
                )
                async with router:
                    async with HttpClientPool(*router.address) as pool:
                        # The replica answers bad_request for a negative
                        # seed; the router must relay it on one forward.
                        status, payload = await pool.request_json(
                            "POST", "/query", {"seed": -1, "k": 5}
                        )
                        assert status == 400
                        assert payload["error"] == "bad_request"
                        assert sum(router._forwards.values()) == 1
                        assert sum(router._retries_by_replica.values()) == 0
                    await router.stop()

        run(main())


class TestFailover:
    def test_crash_fails_over_bit_identically(self, reference_answers):
        async def main():
            async with InProcessFleet(3) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints,
                    num_shards=4,
                    health_interval_s=0,
                    retries=3,
                    retry_backoff_ms=1.0,
                )
                async with router:
                    async with HttpClientPool(*router.address) as pool:
                        victim = router.owner_of(0)
                        victim_index = int(victim.split("-")[1])
                        await fleet.crash(victim_index)
                        for seed, expected in reference_answers.items():
                            status, payload = await pool.request_json(
                                "POST", "/query", {"seed": seed, "k": 50}
                            )
                            assert status == 200 and payload["ok"], payload
                            assert payload["top"] == expected
                        assert router.replica_states()[victim] in (
                            SUSPECT,
                            DEAD,
                        )
                        # Retries are visible and attributed: at least one
                        # forward to the victim failed and was re-sent.
                        stats = router._router_stats()
                        assert stats["forward_errors"][victim] > 0
                        assert sum(stats["retries"].values()) > 0
                        assert stats["answers"][victim] == 0
                    await router.stop()

        run(main())

    def test_metrics_account_for_every_retry(self, reference_answers):
        """forwards == answered + transport failures, and
        forwards - queries-that-got-an-answer == retries."""

        async def main():
            async with InProcessFleet(2) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints,
                    num_shards=4,
                    health_interval_s=0,
                    retries=3,
                    retry_backoff_ms=1.0,
                )
                async with router:
                    async with HttpClientPool(*router.address) as pool:
                        await fleet.crash(0)
                        for seed in range(16):
                            status, payload = await pool.request_json(
                                "POST", "/query", {"seed": seed, "k": 10}
                            )
                            assert status == 200 and payload["ok"]
                        _, _, body = await pool.request("GET", "/metrics")
                        scrape = parse_prometheus_text(body.decode())

                        def total(family):
                            return sum(
                                value
                                for key, value in scrape.samples.items()
                                if key[0] == family
                            )

                        forwards = total("repro_router_forwards_total")
                        answers = total("repro_router_answers_total")
                        errors = total("repro_router_forward_errors_total")
                        retries = total("repro_router_retries_total")
                        queries = scrape.value("repro_router_queries_total")
                        unavailable = scrape.value(
                            "repro_router_unavailable_total"
                        )
                        assert forwards == answers + errors
                        assert retries == forwards - queries
                        assert queries == 16 and unavailable == 0
                        assert answers == 16
                    await router.stop()

        run(main())

    def test_total_outage_is_unavailable_not_a_hang(self):
        async def main():
            async with InProcessFleet(2) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints,
                    num_shards=4,
                    health_interval_s=0,
                    retries=2,
                    retry_backoff_ms=1.0,
                )
                async with router:
                    async with HttpClientPool(*router.address) as pool:
                        await fleet.crash(0)
                        await fleet.crash(1)
                        status, payload = await pool.request_json(
                            "POST", "/query", {"seed": 1, "k": 5}
                        )
                        assert status == 503
                        assert payload["error"] == "unavailable"
                        assert router._unavailable == 1
                    await router.stop()

        run(main())

    def test_health_checks_mark_dead_and_resurrect(self):
        async def main():
            async with InProcessFleet(2) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints,
                    num_shards=4,
                    health_interval_s=0,  # drive probes by hand
                    dead_after=2,
                )
                async with router:
                    states = await router.check_health()
                    assert set(states.values()) == {HEALTHY}
                    crashed = fleet.servers[1]
                    await fleet.crash(1)
                    await router.check_health()
                    assert router.replica_states()["replica-1"] == SUSPECT
                    await router.check_health()
                    assert router.replica_states()["replica-1"] == DEAD
                    # Replica comes back on the same port: next probe heals.
                    revived = HttpQueryServer(
                        crashed.batcher, *fleet.endpoints[1]
                    )
                    async with revived:
                        states = await router.check_health()
                        assert states["replica-1"] == HEALTHY
                    await router.stop()

        run(main())


class TestDrain:
    def test_rolling_drain_excludes_replica(self, reference_answers):
        async def main():
            async with InProcessFleet(3) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints, num_shards=4, health_interval_s=0
                )
                async with router:
                    async with HttpClientPool(*router.address) as pool:
                        status, payload = await pool.request_json(
                            "POST", "/admin/drain?replica=1"
                        )
                        assert status == 202
                        assert payload["draining"] == "replica-1"
                        assert payload["forwarded"] is True
                        assert (
                            router.replica_states()["replica-1"] == DRAINING
                        )
                        # Every query still answers, none via replica-1.
                        for seed, expected in reference_answers.items():
                            status, payload = await pool.request_json(
                                "POST", "/query", {"seed": seed, "k": 50}
                            )
                            assert status == 200
                            assert payload["top"] == expected
                        assert router._answers["replica-1"] == 0
                        # A health probe must not resurrect it.
                        await router.check_health()
                        assert (
                            router.replica_states()["replica-1"] == DRAINING
                        )
                    await router.stop()

        run(main())

    def test_drain_unknown_replica_is_bad_request(self):
        async def main():
            async with InProcessFleet(1) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints, num_shards=4, health_interval_s=0
                )
                async with router:
                    async with HttpClientPool(*router.address) as pool:
                        status, payload = await pool.request_json(
                            "POST", "/admin/drain?replica=7"
                        )
                        assert status == 400
                        assert "unknown replica" in payload["message"]
                    await router.stop()

        run(main())

    def test_drain_accepts_bare_index_and_full_name(self):
        async def main():
            async with InProcessFleet(2) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints, num_shards=4, health_interval_s=0
                )
                async with router:
                    async with HttpClientPool(*router.address) as pool:
                        status, payload = await pool.request_json(
                            "POST", "/admin/drain?replica=replica-0"
                        )
                        assert status == 202
                        assert payload["draining"] == "replica-0"
                    await router.stop()

        run(main())


class TestAggregation:
    def test_stats_and_traces_cover_every_replica(self):
        async def main():
            async with InProcessFleet(2) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints, num_shards=4, health_interval_s=0
                )
                async with router:
                    async with HttpClientPool(*router.address) as pool:
                        status, payload = await pool.request_json(
                            "GET", "/stats"
                        )
                        assert status == 200
                        assert set(payload["replicas"]) == {
                            "replica-0",
                            "replica-1",
                        }
                        assert all(
                            "admission" in stats
                            for stats in payload["replicas"].values()
                        )
                        assert payload["router"]["proto"] == 1
                        status, payload = await pool.request_json(
                            "GET", "/debug/traces"
                        )
                        assert status == 200 and payload["ok"]
                        # Tracing is off on these replicas: each reports
                        # its error rather than vanishing from the doc.
                        assert all(
                            "error" in entry
                            for entry in payload["replicas"].values()
                        )
                    await router.stop()

        run(main())

    def test_metrics_relabel_replica_families(self):
        async def main():
            async with InProcessFleet(2) as fleet:
                router = ReplicaRouter(
                    fleet.endpoints, num_shards=4, health_interval_s=0
                )
                async with router:
                    async with HttpClientPool(*router.address) as pool:
                        for seed in range(8):
                            await pool.request_json(
                                "POST", "/query", {"seed": seed, "k": 5}
                            )
                        _, _, body = await pool.request("GET", "/metrics")
                        scrape = parse_prometheus_text(body.decode())
                        # Per-replica re-export: completed queries across
                        # both replicas sum to what the router forwarded.
                        completed = {
                            dict(key[1])["replica"]: value
                            for key, value in scrape.samples.items()
                            if key[0] == "repro_queries_completed_total"
                        }
                        assert set(completed) == {"replica-0", "replica-1"}
                        assert sum(completed.values()) == 8
                        # The server info gauge carries the proto label.
                        infos = [
                            dict(key[1])
                            for key in scrape.samples
                            if key[0] == "repro_server_info"
                        ]
                        assert len(infos) == 2
                        assert all(info["proto"] == "1" for info in infos)
                    await router.stop()

        run(main())


class TestProtocolQuarantine:
    def test_future_version_replica_is_quarantined(self):
        async def main():
            # A fake replica that speaks proto 999.
            import json as _json

            async def handle(reader, writer):
                try:
                    while True:
                        line = await reader.readline()
                        if not line:
                            break
                        while True:
                            header = await reader.readline()
                            if header in (b"\r\n", b"\n", b""):
                                break
                        payload = _json.dumps(
                            {"ok": True, "status": "serving", "proto": 999}
                        ).encode()
                        writer.write(
                            b"HTTP/1.1 200 OK\r\n"
                            + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                            + payload
                        )
                        await writer.drain()
                except (ConnectionError, OSError):
                    pass

            fake = await asyncio.start_server(handle, "127.0.0.1", 0)
            host, port = fake.sockets[0].getsockname()[:2]
            try:
                router = ReplicaRouter(
                    [(host, port)], num_shards=4, health_interval_s=0
                )
                async with router:
                    states = await router.check_health()
                    assert states["replica-0"] == INCOMPATIBLE
                    await router.stop()
            finally:
                fake.close()
                await fake.wait_closed()

        run(main())


# ----------------------------------------------------------------------
# The acceptance test: SIGKILL a real replica under load.
# ----------------------------------------------------------------------


class TestCrashFailoverAcceptance:
    def test_sigkill_under_load_zero_wrong_answers(self, reference_answers):
        """Three subprocess replicas; one is SIGKILLed mid-stream.  Every
        in-flight and subsequent query must answer, bit-identical to the
        serial solver, and the router's counters must account for every
        retry (forwards == answers + transport failures)."""

        with ReplicaSet(CONFIG, 3, startup_timeout=120.0) as fleet:

            async def main():
                router = ReplicaRouter.for_replica_set(
                    fleet,
                    health_interval_s=0.2,
                    retries=6,
                    retry_backoff_ms=20.0,
                )
                async with router:
                    async with HttpClientPool(
                        *router.address, size=8
                    ) as pool:
                        seeds = list(reference_answers) * 4
                        victim = router.owner_of(seeds[0])
                        victim_index = int(victim.split("-")[1])
                        killed = asyncio.Event()

                        async def one(seed):
                            status, payload = await pool.request_json(
                                "POST", "/query", {"seed": seed, "k": 50}
                            )
                            return seed, status, payload

                        async def kill_mid_load():
                            await asyncio.sleep(0.05)
                            fleet.terminate(
                                victim_index, sig=signal.SIGKILL
                            )
                            killed.set()

                        results, _ = await asyncio.gather(
                            asyncio.gather(*(one(s) for s in seeds)),
                            kill_mid_load(),
                        )
                        assert killed.is_set()
                        for seed, status, payload in results:
                            assert status == 200 and payload["ok"], (
                                seed,
                                payload,
                            )
                            assert (
                                payload["top"] == reference_answers[seed]
                            ), f"wrong answer for seed {seed}"
                        # Counter accounting: every forward is either an
                        # answer or an attributed transport failure, and
                        # every retry is visible.
                        stats = router._router_stats()
                        forwards = sum(stats["forwards"].values())
                        answers = sum(stats["answers"].values())
                        errors = sum(stats["forward_errors"].values())
                        retries = sum(stats["retries"].values())
                        assert forwards == answers + errors
                        assert retries == forwards - len(seeds)
                        assert answers == len(seeds)
                        assert stats["unavailable"] == 0
                    await router.stop()

            asyncio.run(main())
