"""Tests for next-stage selection strategies and the global score table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.sparse_vector import SparseScoreVector
from repro.meloppr.aggregation import GlobalScoreTable
from repro.meloppr.selection import (
    AllSelector,
    CountSelector,
    RatioSelector,
    ThresholdSelector,
)


NODES = np.array([10, 20, 30, 40, 50])
RESIDUALS = np.array([0.05, 0.4, 0.1, 0.3, 0.15])


class TestRatioSelector:
    def test_selects_top_fraction(self):
        selected = RatioSelector(0.4).select(NODES, RESIDUALS)
        assert list(selected) == [20, 40]

    def test_minimum_enforced(self):
        selected = RatioSelector(0.0, minimum=1).select(NODES, RESIDUALS)
        assert list(selected) == [20]

    def test_ratio_one_selects_all_in_order(self):
        selected = RatioSelector(1.0).select(NODES, RESIDUALS)
        assert list(selected) == [20, 40, 50, 30, 10]

    def test_empty_candidates(self):
        selected = RatioSelector(0.5).select(np.array([]), np.array([]))
        assert selected.size == 0

    def test_rounding_up(self):
        # ceil(0.25 * 5) = 2
        assert RatioSelector(0.25).select(NODES, RESIDUALS).size == 2

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            RatioSelector(1.5)

    def test_invalid_minimum(self):
        with pytest.raises(ValueError):
            RatioSelector(0.5, minimum=-1)

    def test_repr(self):
        assert "0.02" in repr(RatioSelector(0.02))


class TestCountSelector:
    def test_fixed_count(self):
        assert list(CountSelector(3).select(NODES, RESIDUALS)) == [20, 40, 50]

    def test_count_larger_than_candidates(self):
        assert CountSelector(99).select(NODES, RESIDUALS).size == 5

    def test_zero_count(self):
        assert CountSelector(0).select(NODES, RESIDUALS).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CountSelector(-1)


class TestThresholdSelector:
    def test_threshold_filtering(self):
        assert list(ThresholdSelector(0.12).select(NODES, RESIDUALS)) == [20, 40, 50]

    def test_high_threshold_selects_nothing(self):
        assert ThresholdSelector(1.0).select(NODES, RESIDUALS).size == 0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ThresholdSelector(-0.1)


class TestAllSelector:
    def test_selects_everything_ordered(self):
        assert list(AllSelector().select(NODES, RESIDUALS)) == [20, 40, 50, 30, 10]

    def test_tie_breaking_by_node_id(self):
        nodes = np.array([5, 3, 9])
        residuals = np.array([0.5, 0.5, 0.5])
        assert list(AllSelector().select(nodes, residuals)) == [3, 5, 9]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AllSelector().select(np.array([1, 2]), np.array([0.1]))


class TestGlobalScoreTable:
    def test_unbounded_accumulation(self):
        table = GlobalScoreTable()
        table.add(1, 0.5)
        table.add(1, 0.25)
        assert table.get(1) == pytest.approx(0.75)

    def test_capacity_evicts_minimum(self):
        table = GlobalScoreTable(capacity=2)
        table.add(1, 0.5)
        table.add(2, 0.1)
        table.add(3, 0.3)
        assert 2 not in table
        assert table.num_entries == 2
        assert table.total_evictions == 1

    def test_eviction_is_final_by_default(self):
        table = GlobalScoreTable(capacity=1)
        table.add(1, 0.5)
        table.add(2, 1.0)   # evicts 1
        table.add(1, 0.4)   # re-inserts 1 without its old mass, evicts nothing new for 2
        assert table.get(1, default=0.0) in (0.0, 0.4)

    def test_idealised_table_remembers_evicted_mass(self):
        table = GlobalScoreTable(capacity=1, evictions_are_final=False)
        table.add(1, 0.5)
        table.add(2, 1.0)   # evicts 1, remembering 0.5
        table.add(1, 0.6)   # evicts 2; node 1 returns with 1.1
        assert table.get(1) == pytest.approx(1.1)

    def test_top_k_ordering(self):
        table = GlobalScoreTable()
        table.add_many([1, 2, 3], [0.2, 0.9, 0.5])
        assert table.top_k_nodes(2) == [2, 3]

    def test_top_k_zero(self):
        assert GlobalScoreTable().top_k(0) == []

    def test_add_sparse_with_scale(self):
        table = GlobalScoreTable()
        table.add_sparse(SparseScoreVector({4: 1.0}), scale=0.5)
        assert table.get(4) == pytest.approx(0.5)

    def test_to_sparse_vector_roundtrip(self):
        table = GlobalScoreTable()
        table.add_many([1, 2], [0.1, 0.2])
        vector = table.to_sparse_vector()
        assert vector.get(2) == pytest.approx(0.2)

    def test_nbytes_is_eight_per_entry(self):
        table = GlobalScoreTable()
        table.add_many(range(10), [1.0] * 10)
        assert table.nbytes() == 80

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            GlobalScoreTable(capacity=0)

    def test_len_and_repr(self):
        table = GlobalScoreTable(capacity=5)
        table.add(1, 1.0)
        assert len(table) == 1
        assert "capacity=5" in repr(table)

    def test_total_updates_counted(self):
        table = GlobalScoreTable()
        table.add_many([1, 2, 3], [0.1, 0.1, 0.1])
        assert table.total_updates == 3

    def test_bounded_table_top_k_matches_unbounded_for_large_capacity(self):
        unbounded = GlobalScoreTable()
        bounded = GlobalScoreTable(capacity=100)
        values = {i: float(i % 17) + 0.01 * i for i in range(50)}
        for node, value in values.items():
            unbounded.add(node, value)
            bounded.add(node, value)
        assert bounded.top_k_nodes(10) == unbounded.top_k_nodes(10)
