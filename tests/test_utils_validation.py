"""Tests for repro.utils.validation."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    check_fraction,
    check_node_id,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive_float(self):
        assert check_positive(2.5, "x") == 2.5

    def test_accepts_positive_int(self):
        assert check_positive(3, "x") == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            check_positive("three", "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_error_message_includes_name(self):
        with pytest.raises(ValueError, match="alpha"):
            check_positive(-2, "alpha")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            check_non_negative(-0.1, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_non_negative(None, "x")


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_accepts_interior(self):
        assert check_probability(0.85, "p") == 0.85

    def test_rejects_above_one(self):
        with pytest.raises(ValueError, match="<= 1"):
            check_probability(1.2, "p")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability(-0.2, "p")


class TestCheckFraction:
    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f")

    def test_accepts_one(self):
        assert check_fraction(1.0, "f") == 1.0


class TestCheckNodeId:
    def test_accepts_valid(self):
        assert check_node_id(3, 10) == 3

    def test_accepts_zero(self):
        assert check_node_id(0, 1) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_node_id(-1, 10)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            check_node_id(10, 10)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_node_id(1.5, 10)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_node_id(True, 10)


class TestIntCheckers:
    def test_positive_int_accepts(self):
        assert check_positive_int(4, "n") == 4

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "n")

    def test_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(1.0, "n")

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int(0, "n") == 0

    def test_non_negative_int_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-3, "n")
