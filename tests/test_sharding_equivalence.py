"""Differential correctness: sharded serving is bit-identical to unsharded.

The sharding subsystem promises that routing extractions to halo-extended
shard sub-graphs is a pure locality layer: every score a shard-routed
:class:`~repro.serving.engine.QueryEngine` produces must equal — bitwise, no
tolerance — what the unsharded :class:`~repro.serving.backends.SerialBackend`
path produces.  This module checks that promise two ways: an exhaustive grid
over partitioners × shard counts × cache on/off, and hypothesis-driven
property tests over random BA/ER graphs and query mixes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.bfs import extract_ego_subgraph
from repro.graph.generators import barabasi_albert_graph, erdos_renyi_graph
from repro.graph.partition import PARTITIONERS, partition_graph
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving import QueryEngine, ShardRouter, ThreadPoolBackend

SHARD_COUNTS = (1, 2, 4, 7)


def exact_scores(results):
    """Per-query score dicts for bitwise comparison (no tolerance)."""
    return [dict(result.scores.items()) for result in results]


def solve_sharded(graph, queries, num_shards, strategy, cached, halo_depth=3, backend=None):
    """Answer ``queries`` through a shard-routed engine."""
    partition = partition_graph(
        graph, num_shards, strategy=strategy, halo_depth=halo_depth
    )
    router = ShardRouter(partition, cache_bytes=(64 << 20) if cached else None)
    with QueryEngine(MeLoPPRSolver(graph), backend=backend, router=router) as engine:
        return engine.solve_batch(queries), engine.stats()


class TestPartitionerGrid:
    """Every partitioner × shard count × cache setting, bitwise identical."""

    @pytest.fixture(scope="class")
    def graph(self):
        return barabasi_albert_graph(150, 2, rng=11, name="ba150")

    @pytest.fixture(scope="class")
    def queries(self):
        seeds = [0, 7, 42, 7, 99]
        return [PPRQuery(seed=seed, k=30, alpha=0.85, length=6) for seed in seeds]

    @pytest.fixture(scope="class")
    def reference(self, graph, queries):
        solver = MeLoPPRSolver(graph)
        return exact_scores([solver.solve(query) for query in queries])

    @pytest.mark.parametrize("cached", [False, True], ids=["cold", "cached"])
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize("strategy", sorted(PARTITIONERS))
    def test_bit_identical_scores(self, graph, queries, reference, strategy, num_shards, cached):
        results, stats = solve_sharded(graph, queries, num_shards, strategy, cached)
        assert exact_scores(results) == reference
        router_stats = stats.router
        assert router_stats.total_extractions > 0
        # halo depth 3 covers the paper stage split — everything shard-local.
        assert router_stats.fallback_rate == 0.0
        if cached:
            # The repeated seed (7) must have hit some shard's cache.
            assert router_stats.hit_rate > 0.0

    @pytest.mark.parametrize("strategy", sorted(PARTITIONERS))
    def test_bit_identical_under_fallback(self, graph, queries, reference, strategy):
        # Halo depth 1 < stage length 3: every extraction falls back to the
        # host graph, and the answers still must not move.
        results, stats = solve_sharded(
            graph, queries, 4, strategy, cached=True, halo_depth=1
        )
        assert exact_scores(results) == reference
        assert stats.router.fallback_rate == 1.0

    def test_bit_identical_threaded(self, graph, queries, reference):
        results, _ = solve_sharded(
            graph, queries, 4, "hash", cached=True, backend=ThreadPoolBackend(4)
        )
        assert exact_scores(results) == reference


class TestShardLocalExtraction:
    """The router's extractions equal host-graph extractions, array for array."""

    def test_extraction_arrays_identical(self, small_ba_graph):
        partition = partition_graph(small_ba_graph, 3, strategy="degree", halo_depth=3)
        router = ShardRouter(partition)
        for center in range(0, small_ba_graph.num_nodes, 17):
            for depth in (0, 1, 2, 3):
                expected_sub, expected_bfs = extract_ego_subgraph(
                    small_ba_graph, center, depth
                )
                got_sub, got_bfs, hit = router.extract(small_ba_graph, center, depth)
                assert not hit
                assert np.array_equal(got_sub.graph.indptr, expected_sub.graph.indptr)
                assert np.array_equal(got_sub.graph.indices, expected_sub.graph.indices)
                assert np.array_equal(got_sub.global_ids, expected_sub.global_ids)
                assert got_sub.graph.name == expected_sub.graph.name
                assert np.array_equal(got_bfs.nodes, expected_bfs.nodes)
                assert np.array_equal(got_bfs.levels, expected_bfs.levels)
                assert got_bfs.edges_scanned == expected_bfs.edges_scanned
                assert got_bfs.source == expected_bfs.source


@st.composite
def graph_and_queries(draw):
    """A random small BA or ER graph plus a query mix over it."""
    kind = draw(st.sampled_from(["ba", "er"]))
    rng = draw(st.integers(min_value=0, max_value=2**16))
    num_nodes = draw(st.integers(min_value=30, max_value=120))
    if kind == "ba":
        attachment = draw(st.integers(min_value=1, max_value=3))
        graph = barabasi_albert_graph(num_nodes, attachment, rng=rng)
    else:
        probability = draw(st.floats(min_value=0.02, max_value=0.12))
        graph = erdos_renyi_graph(num_nodes, probability, rng=rng)
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_nodes - 1),
            min_size=1,
            max_size=4,
        )
    )
    length = draw(st.sampled_from([2, 4, 6]))
    queries = [PPRQuery(seed=seed, k=20, alpha=0.85, length=length) for seed in seeds]
    return graph, queries


class TestPropertyBased:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        data=graph_and_queries(),
        num_shards=st.sampled_from(SHARD_COUNTS),
        strategy=st.sampled_from(sorted(PARTITIONERS)),
        cached=st.booleans(),
    )
    def test_random_graphs_bit_identical(self, data, num_shards, strategy, cached):
        graph, queries = data
        solver = MeLoPPRSolver(graph)
        reference = exact_scores([solver.solve(query) for query in queries])
        results, _ = solve_sharded(graph, queries, num_shards, strategy, cached)
        assert exact_scores(results) == reference

    @settings(max_examples=8, deadline=None)
    @given(
        num_shards=st.sampled_from(SHARD_COUNTS),
        strategy=st.sampled_from(sorted(PARTITIONERS)),
        halo_depth=st.integers(min_value=0, max_value=4),
    )
    def test_any_halo_depth_bit_identical(self, num_shards, strategy, halo_depth):
        # Fixed graph/queries; vary the partition shape including halos too
        # shallow for the stage depth (forcing the fallback path).
        graph = barabasi_albert_graph(80, 2, rng=5)
        queries = [PPRQuery(seed=seed, k=20, length=6) for seed in (3, 40, 3)]
        solver = MeLoPPRSolver(graph)
        reference = exact_scores([solver.solve(query) for query in queries])
        results, _ = solve_sharded(
            graph, queries, num_shards, strategy, cached=True, halo_depth=halo_depth
        )
        assert exact_scores(results) == reference
