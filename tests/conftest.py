"""Shared pytest fixtures.

The fixtures provide small deterministic graphs that every test module can
reuse without re-generating them, keeping the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.graph.generators import barabasi_albert_graph, citation_graph


@pytest.fixture(scope="session")
def triangle_graph() -> CSRGraph:
    """A 3-node triangle."""
    return CSRGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)], name="triangle")


@pytest.fixture(scope="session")
def path_graph() -> CSRGraph:
    """A 5-node path 0-1-2-3-4."""
    builder = GraphBuilder(num_nodes=5)
    builder.add_path(range(5))
    return builder.build(name="path5")


@pytest.fixture(scope="session")
def star_graph() -> CSRGraph:
    """A star with centre 0 and 6 leaves."""
    builder = GraphBuilder(num_nodes=7)
    builder.add_star(0, range(1, 7))
    return builder.build(name="star7")


@pytest.fixture(scope="session")
def fig1_graph() -> CSRGraph:
    """The 4-node example graph of Fig. 1 of the paper.

    v1 is connected to v2, v3 and v4; there are no other edges (node ids are
    shifted to 0-based: seed v1 -> 0).
    """
    return CSRGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)], name="fig1")


@pytest.fixture(scope="session")
def small_ba_graph() -> CSRGraph:
    """A 200-node Barabási–Albert graph (deterministic)."""
    return barabasi_albert_graph(200, 2, rng=3, name="ba200")


@pytest.fixture(scope="session")
def small_citation_graph() -> CSRGraph:
    """A 300-node citation-style graph (deterministic)."""
    return citation_graph(300, 3.0, rng=5, name="cite300")


@pytest.fixture(scope="session")
def citeseer_standin() -> CSRGraph:
    """The G1 (citeseer) stand-in used by integration tests."""
    return load_dataset("G1")


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
