"""Tests for the graph partitioners and halo-extended shard construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.bfs import bfs_levels
from repro.graph.generators import barabasi_albert_graph
from repro.graph.partition import (
    DEFAULT_HALO_DEPTH,
    PARTITIONERS,
    degree_balanced_partition,
    hash_partition,
    partition_graph,
    range_partition,
)


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(120, 2, rng=13, name="ba120")


class TestPartitioners:
    @pytest.mark.parametrize("strategy", sorted(PARTITIONERS))
    @pytest.mark.parametrize("num_shards", [1, 2, 5])
    def test_assignment_is_total_and_in_range(self, graph, strategy, num_shards):
        assignments = PARTITIONERS[strategy](graph, num_shards)
        assert assignments.shape == (graph.num_nodes,)
        assert assignments.min() >= 0
        assert assignments.max() < num_shards

    def test_hash_is_deterministic(self, graph):
        first = hash_partition(graph, 4)
        second = hash_partition(graph, 4)
        assert np.array_equal(first, second)

    @pytest.mark.parametrize("num_shards", [2, 4, 8])
    def test_hash_is_not_id_modulo(self, graph, num_shards):
        # Power-of-two shard counts are where a naive (id * odd) % m hash
        # degenerates to id % m; the high-bit hash must not.
        assignments = hash_partition(graph, num_shards)
        modulo = np.arange(graph.num_nodes) % num_shards
        assert not np.array_equal(assignments, modulo)
        # Still reasonably uniform: every shard gets a share.
        counts = np.bincount(assignments, minlength=num_shards)
        assert counts.min() > 0

    def test_range_is_contiguous(self, graph):
        assignments = range_partition(graph, 4)
        # Node ids within a shard form one contiguous run.
        assert np.all(np.diff(assignments) >= 0)
        assert set(assignments.tolist()) == {0, 1, 2, 3}

    def test_range_more_shards_than_nodes(self):
        tiny = barabasi_albert_graph(5, 1, rng=0)
        assignments = range_partition(tiny, 9)
        assert assignments.shape == (5,)
        assert assignments.max() < 9

    def test_degree_balanced_balances_degree(self, graph):
        num_shards = 3
        assignments = degree_balanced_partition(graph, num_shards)
        degrees = graph.degrees()
        loads = [int(degrees[assignments == s].sum()) for s in range(num_shards)]
        # Greedy LPT: no shard exceeds the mean load by more than the
        # largest single degree.
        assert max(loads) - min(loads) <= int(degrees.max())

    def test_degree_balanced_deterministic(self, graph):
        assert np.array_equal(
            degree_balanced_partition(graph, 4), degree_balanced_partition(graph, 4)
        )


class TestPartitionGraph:
    @pytest.mark.parametrize("strategy", sorted(PARTITIONERS))
    def test_owned_sets_partition_the_node_set(self, graph, strategy):
        partition = partition_graph(graph, 4, strategy=strategy)
        owned_union = np.concatenate([shard.owned for shard in partition.shards])
        assert np.array_equal(np.sort(owned_union), np.arange(graph.num_nodes))
        for shard in partition.shards:
            assert np.all(np.diff(shard.owned) > 0)  # sorted, unique

    def test_shard_global_ids_sorted(self, graph):
        partition = partition_graph(graph, 3, strategy="hash", halo_depth=2)
        for shard in partition.shards:
            ids = shard.subgraph.global_ids
            assert np.all(np.diff(ids) > 0)

    def test_halo_covers_every_ball(self, graph):
        halo_depth = 2
        partition = partition_graph(graph, 4, strategy="hash", halo_depth=halo_depth)
        for shard in partition.shards:
            for center in shard.owned[:: max(1, shard.owned.size // 5)]:
                ball = bfs_levels(graph, int(center), halo_depth).nodes
                for node in ball:
                    assert shard.subgraph.contains_global(int(node))

    def test_halo_zero_means_owned_only(self, graph):
        partition = partition_graph(graph, 4, strategy="range", halo_depth=0)
        for shard in partition.shards:
            assert shard.num_halo == 0
            assert np.array_equal(shard.subgraph.global_ids, shard.owned)

    def test_single_shard_is_whole_graph(self, graph):
        partition = partition_graph(graph, 1, strategy="hash", halo_depth=3)
        (shard,) = partition.shards
        assert shard.num_owned == graph.num_nodes
        assert shard.num_halo == 0
        assert shard.subgraph.num_edges == graph.num_edges
        assert partition.replication_factor() == 1.0
        assert partition.halo_overhead_bytes() == 0

    def test_shard_membership_helpers(self, graph):
        partition = partition_graph(graph, 3, strategy="hash")
        for node in (0, 17, graph.num_nodes - 1):
            shard = partition.shard_for(node)
            assert shard.owns(node)
            assert partition.shard_of(node) == shard.shard_id
            others = [s for s in partition.shards if s.shard_id != shard.shard_id]
            assert not any(other.owns(node) for other in others)

    def test_deeper_halo_costs_more_bytes(self, graph):
        shallow = partition_graph(graph, 4, strategy="hash", halo_depth=1)
        deep = partition_graph(graph, 4, strategy="hash", halo_depth=3)
        assert deep.halo_overhead_bytes() > shallow.halo_overhead_bytes()
        assert deep.replication_factor() >= shallow.replication_factor()

    def test_default_halo_depth(self, graph):
        partition = partition_graph(graph, 2)
        assert partition.halo_depth == DEFAULT_HALO_DEPTH
        assert partition.covers_depth(DEFAULT_HALO_DEPTH)
        assert not partition.covers_depth(DEFAULT_HALO_DEPTH + 1)

    def test_as_dict_shape(self, graph):
        partition = partition_graph(graph, 2, strategy="degree", halo_depth=2)
        payload = partition.as_dict()
        assert payload["strategy"] == "degree"
        assert payload["num_shards"] == 2
        assert payload["halo_depth"] == 2
        assert len(payload["shards"]) == 2
        for entry in payload["shards"]:
            assert entry["num_owned"] >= 0
            assert entry["halo_bytes"] >= 0
            assert entry["nbytes"] > 0
        assert payload["halo_overhead_bytes"] == sum(
            entry["halo_bytes"] for entry in payload["shards"]
        )
        assert payload["replication_factor"] >= 1.0
        assert payload["owned_balance"] >= 1.0

    def test_invalid_arguments_rejected(self, graph):
        with pytest.raises(ValueError):
            partition_graph(graph, 0)
        with pytest.raises(ValueError):
            partition_graph(graph, 2, halo_depth=-1)
        with pytest.raises(ValueError):
            partition_graph(graph, 2, strategy="metis")

    def test_partitioner_output_validated(self, graph, monkeypatch):
        from repro.graph import partition as partition_module

        monkeypatch.setitem(
            partition_module.PARTITIONERS,
            "broken",
            lambda g, s: np.full(g.num_nodes, s, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            partition_graph(graph, 2, strategy="broken")
