"""Unit tests for the Prometheus exposition renderer and its parser.

The renderer is proven against the parser (round-trip on real stats
snapshots, including cache tiers and router counters), the value/label
formatting helpers are pinned directly, and the parser's rejection paths —
the failure modes a real scraper would reject — are exercised one by one.
"""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.graph.partition import partition_graph
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving import QueryEngine, SubgraphCache
from repro.serving.cache import CacheStats
from repro.serving.frontend import (
    MicroBatcher,
    parse_prometheus_text,
    render_prometheus,
)
from repro.serving.frontend.metrics import (
    _cache_difference,
    _escape_label_value,
    _format_value,
)
from repro.serving.result_cache import ScoreTableCache
from repro.serving.sharding import ShardRouter


@pytest.fixture()
def config():
    return MeLoPPRConfig(stage_lengths=(3, 3), track_memory=False)


def batcher_stats(engine, seeds=(3, 3, 7)):
    """Run a few queries through a batcher and return its stats snapshot."""

    async def run():
        async with MicroBatcher(engine) as batcher:
            for seed in seeds:
                await batcher.submit(PPRQuery(seed=seed, k=10))
            return batcher.stats()

    return asyncio.run(run())


class TestFormattingHelpers:
    def test_format_value_integers_have_no_decimal_point(self):
        assert _format_value(0) == "0"
        assert _format_value(42) == "42"
        assert _format_value(42.0) == "42"
        assert _format_value(-3.0) == "-3"

    def test_format_value_floats_round_trip(self):
        assert float(_format_value(0.1)) == 0.1
        assert float(_format_value(1.0 / 3.0)) == 1.0 / 3.0

    def test_format_value_special_cases(self):
        assert _format_value(True) == "1"
        assert _format_value(False) == "0"
        assert _format_value(math.inf) == "+Inf"
        assert _format_value(-math.inf) == "-Inf"
        # Very large integral floats keep their float rendering (precision
        # is gone anyway; don't pretend it is an exact integer).
        assert "e" in _format_value(1e21).lower()

    def test_escape_label_value(self):
        assert _escape_label_value('a"b') == 'a\\"b'
        assert _escape_label_value("a\\b") == "a\\\\b"
        assert _escape_label_value("a\nb") == "a\\nb"
        assert _escape_label_value("plain") == "plain"


class TestCacheDifference:
    def test_counterwise_subtraction(self):
        combined = CacheStats(
            hits=10, misses=5, evictions=3, rejected=2, expired=1,
            current_bytes=1000, num_entries=8,
        )
        result = CacheStats(
            hits=4, misses=2, evictions=1, rejected=0, expired=1,
            current_bytes=300, num_entries=3,
        )
        diff = _cache_difference(combined, result)
        assert diff.hits == 6
        assert diff.misses == 3
        assert diff.evictions == 2
        assert diff.rejected == 2
        assert diff.expired == 0
        assert diff.current_bytes == 700
        assert diff.num_entries == 5

    def test_clamps_at_zero(self):
        combined = CacheStats(
            hits=1, misses=0, evictions=0, rejected=0, expired=0,
            current_bytes=0, num_entries=0,
        )
        result = CacheStats(
            hits=5, misses=2, evictions=1, rejected=1, expired=1,
            current_bytes=100, num_entries=4,
        )
        diff = _cache_difference(combined, result)
        assert diff.hits == 0
        assert diff.misses == 0
        assert diff.current_bytes == 0
        assert diff.num_entries == 0


class TestRenderer:
    def test_round_trip_on_real_stats(self, small_ba_graph, config):
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph, config),
            cache=SubgraphCache(),
            result_cache=ScoreTableCache(),
        )
        with engine:
            stats = batcher_stats(engine)
        scrape = parse_prometheus_text(render_prometheus(stats))

        assert scrape.value("repro_queries_completed_total") == 3
        assert scrape.value("repro_engine_queries_served_total") <= 3  # dedup
        assert scrape.types["repro_queries_completed_total"] == "counter"
        assert scrape.types["repro_inflight_queries"] == "gauge"
        assert scrape.types["repro_request_latency_seconds"] == "summary"
        # Every tier present, combined = subgraph + result counter-wise.
        for family in ("repro_cache_hits_total", "repro_cache_misses_total"):
            assert scrape.value(family, cache="combined") == (
                scrape.value(family, cache="subgraph")
                + scrape.value(family, cache="result")
            )
        # The summary carries its quantiles, sum and count.
        latency = scrape.family_samples("repro_request_latency_seconds")
        quantiles = {
            dict(key[1]).get("quantile")
            for key in latency
            if key[0] == "repro_request_latency_seconds"
        }
        assert quantiles == {"0.5", "0.95", "0.99"}
        assert scrape.value("repro_request_latency_seconds_count") == 3
        assert "repro_request_latency_seconds_sum" in scrape

    def test_draining_flag_and_info_labels(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        with engine:
            stats = batcher_stats(engine)
        exposition = render_prometheus(
            stats, draining=True, info={"backend": "serial", "kernel": "csr"}
        )
        scrape = parse_prometheus_text(exposition)
        assert scrape.value("repro_server_draining") == 1
        assert scrape.value(
            "repro_server_info", backend="serial", kernel="csr"
        ) == 1

    def test_info_labels_escape_and_round_trip(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        with engine:
            stats = batcher_stats(engine)
        nasty = 'quo"te back\\slash new\nline'
        scrape = parse_prometheus_text(
            render_prometheus(stats, info={"version": nasty})
        )
        assert scrape.value("repro_server_info", version=nasty) == 1

    def test_no_cache_no_cache_families(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        with engine:
            stats = batcher_stats(engine)
        scrape = parse_prometheus_text(render_prometheus(stats))
        assert "repro_cache_hits_total" not in scrape
        assert "repro_shards" not in scrape

    def test_result_cache_only_is_both_combined_and_result(
        self, small_ba_graph, config
    ):
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph, config),
            result_cache=ScoreTableCache(),
        )
        with engine:
            stats = batcher_stats(engine, seeds=(3, 3, 3))
        scrape = parse_prometheus_text(render_prometheus(stats))
        assert scrape.value(
            "repro_cache_hits_total", cache="combined"
        ) == scrape.value("repro_cache_hits_total", cache="result")
        # There is no extraction cache, so the subgraph tier is all zero
        # (combined minus result leaves nothing).
        assert scrape.value("repro_cache_hits_total", cache="subgraph") == 0
        assert scrape.value("repro_cache_misses_total", cache="subgraph") == 0
        assert scrape.value("repro_cache_hits_total", cache="result") >= 2

    def test_router_families(self, small_ba_graph, config):
        partition = partition_graph(
            small_ba_graph, 3, strategy="hash", halo_depth=3
        )
        router = ShardRouter(partition)
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config), router=router)
        with engine:
            stats = batcher_stats(engine, seeds=(3, 7, 11))
        scrape = parse_prometheus_text(render_prometheus(stats))
        assert scrape.value("repro_shards") == 3
        local = scrape.value("repro_shard_local_extractions_total")
        fallback = scrape.value("repro_shard_fallback_extractions_total")
        # Several extractions per multi-stage query; at least one per query.
        assert local + fallback >= 3
        ratio = scrape.value("repro_shard_fallback_ratio")
        assert 0.0 <= ratio <= 1.0

    def test_tracing_families(self, small_ba_graph, config):
        from repro.serving import Tracer

        tracer = Tracer(sample_rate=1.0)
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config), tracer=tracer)
        with engine:
            for _ in range(2):
                ctx = tracer.start_trace("request")
                engine.solve_batch([PPRQuery(seed=3, k=10)], [ctx])
                ctx.finish()
            stats = batcher_stats(engine, seeds=(3,))
        scrape = parse_prometheus_text(render_prometheus(stats))
        assert scrape.value("repro_traces_started_total") >= 2
        assert scrape.value("repro_traces_finished_total") >= 2
        assert scrape.value("repro_trace_spans_total") > 0
        assert scrape.value("repro_traces_dropped_total") == 0
        assert scrape.value("repro_slow_traces_total") == 0
        assert scrape.value("repro_trace_sample_rate") == 1.0
        assert scrape.types["repro_trace_sample_rate"] == "gauge"
        assert scrape.types["repro_traces_sampled_total"] == "counter"

    def test_no_tracer_no_tracing_families(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        with engine:
            stats = batcher_stats(engine)
        scrape = parse_prometheus_text(render_prometheus(stats))
        assert "repro_traces_started_total" not in scrape
        assert "repro_trace_sample_rate" not in scrape


class TestParserAcceptance:
    def test_minimal_exposition(self):
        scrape = parse_prometheus_text(
            "# HELP x_total about x\n# TYPE x_total counter\nx_total 3\n"
        )
        assert scrape.value("x_total") == 3
        assert scrape.types["x_total"] == "counter"

    def test_labels_and_escapes(self):
        scrape = parse_prometheus_text(
            '# TYPE x gauge\nx{a="1",b="two words",c="q\\"esc\\\\n"} 2.5\n'
        )
        assert scrape.value("x", a="1", b="two words", c='q"esc\\n') == 2.5

    def test_summary_children_ride_on_family_type(self):
        text = (
            "# TYPE lat summary\n"
            'lat{quantile="0.5"} 0.1\n'
            "lat_sum 1.5\n"
            "lat_count 10\n"
        )
        scrape = parse_prometheus_text(text)
        assert scrape.value("lat_sum") == 1.5
        assert scrape.value("lat_count") == 10
        assert len(scrape.family_samples("lat")) == 3

    def test_special_values(self):
        text = (
            "# TYPE x gauge\n"
            'x{k="inf"} +Inf\n'
            'x{k="ninf"} -Inf\n'
            'x{k="nan"} NaN\n'
        )
        scrape = parse_prometheus_text(text)
        assert scrape.value("x", k="inf") == math.inf
        assert scrape.value("x", k="ninf") == -math.inf
        assert math.isnan(scrape.value("x", k="nan"))

    def test_blank_lines_and_comments_ignored(self):
        scrape = parse_prometheus_text(
            "\n# a comment\n# TYPE x gauge\n\nx 1\n# trailing\n"
        )
        assert scrape.value("x") == 1

    def test_contains(self):
        scrape = parse_prometheus_text("# TYPE x gauge\nx 1\n")
        assert "x" in scrape
        assert "y" not in scrape


class TestParserRejections:
    def test_sample_without_type_header(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_prometheus_text("orphan_metric 1\n")

    def test_malformed_type_line(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus_text("# TYPE x flavour\nx 1\n")
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus_text("# TYPE x\nx 1\n")

    def test_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus_text(
                "# TYPE x gauge\n# TYPE x counter\nx 1\n"
            )

    def test_duplicate_sample(self):
        with pytest.raises(ValueError, match="duplicate sample"):
            parse_prometheus_text("# TYPE x gauge\nx 1\nx 2\n")

    def test_same_name_different_labels_is_fine(self):
        scrape = parse_prometheus_text(
            '# TYPE x gauge\nx{a="1"} 1\nx{a="2"} 2\n'
        )
        assert scrape.value("x", a="1") == 1
        assert scrape.value("x", a="2") == 2

    def test_malformed_sample_line(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("# TYPE x gauge\n!!nonsense!!\n")

    def test_malformed_labels(self):
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus_text("# TYPE x gauge\nx{a=unquoted} 1\n")
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus_text('# TYPE x gauge\nx{a="1" b="2"!} 1\n')

    def test_non_numeric_value(self):
        with pytest.raises(ValueError, match="non-numeric|malformed"):
            parse_prometheus_text("# TYPE x gauge\nx banana\n")

    def test_errors_carry_line_numbers(self):
        with pytest.raises(ValueError, match="line 3"):
            parse_prometheus_text("# TYPE x gauge\nx 1\n!!bad!!\n")
