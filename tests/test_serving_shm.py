"""Shared-memory graph export/attach lifecycle (repro.serving.shm)."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import barabasi_albert_graph
from repro.graph.partition import partition_graph
from repro.serving.shm import (
    SHM_PREFIX,
    SharedGraphHandle,
    SharedShardHandle,
    leaked_segment_names,
)

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not available"
)


class TestSharedGraphHandle:
    def test_round_trip_is_equal_and_named(self, small_ba_graph):
        with SharedGraphHandle.export(small_ba_graph) as handle:
            attached = SharedGraphHandle.attach(handle.descriptor)
            graph = attached.graph
            assert graph.name == small_ba_graph.name
            assert np.array_equal(graph.indptr, small_ba_graph.indptr)
            assert np.array_equal(graph.indices, small_ba_graph.indices)
            # The attached arrays are views into the segments, not copies.
            assert not graph.indptr.flags.owndata
            assert not graph.indices.flags.owndata
            assert not graph.indptr.flags.writeable
            del graph
            attached.close()

    def test_descriptor_is_picklable(self, small_ba_graph):
        with SharedGraphHandle.export(small_ba_graph) as handle:
            descriptor = pickle.loads(pickle.dumps(handle.descriptor))
            assert descriptor == handle.descriptor
            attached = SharedGraphHandle.attach(descriptor)
            assert attached.graph.num_edges == small_ba_graph.num_edges
            del attached

    def test_segments_visible_then_unlinked(self, small_ba_graph):
        handle = SharedGraphHandle.export(small_ba_graph)
        names = [handle.descriptor.indptr.segment, handle.descriptor.indices.segment]
        assert all(name.startswith(SHM_PREFIX) for name in names)
        on_disk = leaked_segment_names()
        assert all(name in on_disk for name in names)
        handle.unlink()
        on_disk = leaked_segment_names()
        assert all(name not in on_disk for name in names)

    def test_unlink_idempotent(self, small_ba_graph):
        handle = SharedGraphHandle.export(small_ba_graph)
        handle.unlink()
        handle.unlink()
        handle.close()

    def test_edgeless_graph_round_trips(self):
        graph = CSRGraph(np.zeros(4, dtype=np.int64), np.empty(0, dtype=np.int32), name="iso3")
        with SharedGraphHandle.export(graph) as handle:
            attached = SharedGraphHandle.attach(handle.descriptor)
            assert attached.graph.num_nodes == 3
            assert attached.graph.num_edges == 0
            del attached

    def test_nbytes_covers_arrays(self, small_ba_graph):
        with SharedGraphHandle.export(small_ba_graph) as handle:
            assert handle.nbytes() >= small_ba_graph.nbytes()
            assert "SharedGraphHandle" in repr(handle)

    def test_attached_close_is_safe_with_live_views(self, small_ba_graph):
        with SharedGraphHandle.export(small_ba_graph) as handle:
            attached = SharedGraphHandle.attach(handle.descriptor)
            graph = attached.graph
            # Views are still alive: close() must degrade gracefully (the
            # mapping is released when the views die), never raise.
            attached.close()
            assert graph.num_nodes == small_ba_graph.num_nodes
            del graph
            attached.close()

    def test_attach_context_manager(self, small_ba_graph):
        with SharedGraphHandle.export(small_ba_graph) as handle:
            with SharedGraphHandle.attach(handle.descriptor) as attached:
                nodes = attached.graph.num_nodes
            assert nodes == small_ba_graph.num_nodes

    def test_export_failure_leaks_nothing(self, small_ba_graph, monkeypatch):
        # If exporting the second array fails, the first segment must be
        # unlinked on the way out — a partial export must not leak /dev/shm.
        import repro.serving.shm as shm_module

        before = set(leaked_segment_names())
        real = shm_module._export_array
        calls = {"n": 0}

        def failing(array):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("synthetic export failure")
            return real(array)

        monkeypatch.setattr(shm_module, "_export_array", failing)
        with pytest.raises(OSError, match="synthetic"):
            SharedGraphHandle.export(small_ba_graph)
        assert set(leaked_segment_names()) - before == set()


class TestSharedShardHandle:
    @pytest.fixture(scope="class")
    def partition(self):
        graph = barabasi_albert_graph(120, 2, rng=9, name="ba120")
        return partition_graph(graph, 3, strategy="hash", halo_depth=2)

    def test_round_trip_matches_shard(self, partition):
        shard = partition.shards[1]
        with SharedShardHandle.export(shard, partition.host.name, partition.halo_depth) as handle:
            attached = SharedShardHandle.attach(handle.descriptor)
            assert attached.shard_id == 1
            assert attached.host_name == partition.host.name
            assert attached.halo_depth == partition.halo_depth
            assert np.array_equal(
                attached.subgraph.global_ids, shard.subgraph.global_ids
            )
            assert np.array_equal(
                attached.subgraph.graph.indptr, shard.subgraph.graph.indptr
            )
            assert np.array_equal(
                attached.subgraph.graph.indices, shard.subgraph.graph.indices
            )
            # The id map works on the attached copy too.
            some_global = int(shard.subgraph.global_ids[0])
            assert attached.subgraph.to_local(some_global) == 0
            assert "AttachedShard" in repr(attached)
            subgraph = attached.subgraph
            with attached:  # close via context manager, views still alive
                pass
            del subgraph
            attached.close()

    def test_shard_handle_close_detaches(self, partition):
        shard = partition.shards[2]
        handle = SharedShardHandle.export(shard, partition.host.name, partition.halo_depth)
        try:
            handle.close()  # creator detach only; segments must survive
            attached = SharedShardHandle.attach(handle.descriptor)
            assert attached.subgraph.num_nodes == shard.subgraph.num_nodes
            del attached
        finally:
            handle.unlink()

    def test_shard_export_failure_leaks_nothing(self, partition, monkeypatch):
        import repro.serving.shm as shm_module

        before = set(leaked_segment_names())

        def failing(array):
            if array.dtype == np.int64 and array.ndim == 1 and array is partition.shards[0].subgraph.global_ids:
                raise OSError("synthetic id export failure")
            return real(array)

        real = shm_module._export_array
        monkeypatch.setattr(shm_module, "_export_array", failing)
        with pytest.raises(OSError, match="synthetic"):
            SharedShardHandle.export(
                partition.shards[0], partition.host.name, partition.halo_depth
            )
        assert set(leaked_segment_names()) - before == set()

    def test_descriptor_picklable_and_unlink(self, partition):
        shard = partition.shards[0]
        handle = SharedShardHandle.export(shard, partition.host.name, partition.halo_depth)
        descriptor = pickle.loads(pickle.dumps(handle.descriptor))
        assert descriptor.shard_id == 0
        assert handle.nbytes() > 0
        assert "SharedShardHandle" in repr(handle)
        handle.unlink()
        handle.unlink()
        assert descriptor.graph.indptr.segment not in leaked_segment_names()


class TestLeakChecker:
    def test_missing_dir_is_empty(self):
        assert leaked_segment_names("/no/such/dir") == []

    def test_ignores_foreign_segments(self, small_ba_graph, tmp_path):
        (tmp_path / "somethingelse").write_bytes(b"x")
        assert leaked_segment_names(str(tmp_path)) == []
        (tmp_path / f"{SHM_PREFIX}-deadbeef").write_bytes(b"x")
        assert leaked_segment_names(str(tmp_path)) == [f"{SHM_PREFIX}-deadbeef"]
