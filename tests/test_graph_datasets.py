"""Tests for repro.graph.datasets (the paper's Table II stand-ins)."""

from __future__ import annotations

import pytest

from repro.graph.datasets import (
    PAPER_DATASETS,
    dataset_names,
    get_spec,
    load_dataset,
    load_paper_suite,
)
from repro.graph.stats import compute_stats


class TestSpecs:
    def test_six_datasets(self):
        assert dataset_names() == ("G1", "G2", "G3", "G4", "G5", "G6")

    def test_paper_sizes_recorded(self):
        assert PAPER_DATASETS["G1"].num_nodes == 3_327
        assert PAPER_DATASETS["G6"].num_edges == 2_987_624

    def test_average_degree(self):
        spec = PAPER_DATASETS["G2"]
        assert spec.average_degree == pytest.approx(2 * 5278 / 2708)

    def test_get_spec_by_key_and_name(self):
        assert get_spec("G3").name == "pubmed"
        assert get_spec("pubmed").key == "G3"

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError):
            get_spec("G99")

    def test_scaled_num_nodes_bounds(self):
        spec = PAPER_DATASETS["G4"]
        assert spec.scaled_num_nodes(0.01) >= 64
        with pytest.raises(ValueError):
            spec.scaled_num_nodes(0.0)
        with pytest.raises(ValueError):
            spec.scaled_num_nodes(1.5)


class TestLoading:
    def test_small_graphs_match_paper_node_counts(self):
        g1 = load_dataset("G1")
        g2 = load_dataset("G2")
        assert g1.num_nodes == 3_327
        assert g2.num_nodes == 2_708

    def test_average_degree_close_to_paper(self):
        for key in ("G1", "G2", "G3"):
            spec = PAPER_DATASETS[key]
            graph = load_dataset(key)
            stats = compute_stats(graph)
            assert stats.average_degree == pytest.approx(
                spec.average_degree, rel=0.35
            )

    def test_loading_is_deterministic(self):
        assert load_dataset("G2") == load_dataset("G2")

    def test_load_by_name(self):
        assert load_dataset("cora").name == "cora"

    def test_scale_override(self):
        small = load_dataset("G3", scale=0.1)
        assert small.num_nodes == pytest.approx(1972, abs=5)

    def test_large_graphs_default_scaled(self):
        g6 = load_dataset("G6")
        assert g6.num_nodes < PAPER_DATASETS["G6"].num_nodes

    def test_no_isolated_nodes(self):
        for key in ("G1", "G2"):
            assert compute_stats(load_dataset(key)).isolated_nodes == 0


class TestSuite:
    def test_small_only_suite(self):
        suite = load_paper_suite(small_only=True)
        assert set(suite) == {"G1", "G2", "G3"}

    def test_full_suite_keys(self):
        suite = load_paper_suite(scale=0.01)
        assert set(suite) == set(dataset_names())

    def test_suite_graphs_named_after_datasets(self):
        suite = load_paper_suite(small_only=True)
        assert suite["G1"].name == "citeseer"
