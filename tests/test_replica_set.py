"""The consistent-hash ring and the replica supervisor.

Ring tests are pure and fast; supervisor tests spawn one real fleet per
module (subprocess startup dominates, so the fleet is shared).
"""

import signal
import subprocess
import sys

import pytest

from repro.serving.frontend.config import ServingConfig
from repro.serving.replica import (
    ConsistentHashRing,
    ReplicaSet,
    pick_free_port,
)


# ----------------------------------------------------------------------
# ConsistentHashRing
# ----------------------------------------------------------------------


class TestConsistentHashRing:
    def test_deterministic_across_instances(self):
        a = ConsistentHashRing(["replica-0", "replica-1", "replica-2"])
        b = ConsistentHashRing(["replica-2", "replica-0", "replica-1"])
        # Assignment is a pure function of (members, key) — insertion
        # order and process boundaries must not matter.
        assert [a.owner(k) for k in range(256)] == [
            b.owner(k) for k in range(256)
        ]

    def test_preference_starts_with_owner_and_covers_all(self):
        ring = ConsistentHashRing(["replica-0", "replica-1", "replica-2"])
        for key in range(64):
            prefs = ring.preference(key)
            assert prefs[0] == ring.owner(key)
            assert sorted(prefs) == ["replica-0", "replica-1", "replica-2"]

    def test_preference_count_limits(self):
        ring = ConsistentHashRing(["replica-0", "replica-1", "replica-2"])
        assert len(ring.preference(7, count=2)) == 2
        assert len(ring.preference(7, count=99)) == 3

    def test_minimal_movement_on_removal(self):
        ring = ConsistentHashRing(["replica-0", "replica-1", "replica-2"])
        before = {key: ring.owner(key) for key in range(512)}
        ring.remove("replica-1")
        after = {key: ring.owner(key) for key in range(512)}
        moved = [key for key in before if before[key] != after[key]]
        # Only keys the removed member owned may move.
        assert moved, "removal should reassign the victim's keys"
        assert all(before[key] == "replica-1" for key in moved)
        assert all(after[key] != "replica-1" for key in before)

    def test_minimal_movement_on_addition(self):
        ring = ConsistentHashRing(["replica-0", "replica-1"])
        before = {key: ring.owner(key) for key in range(512)}
        ring.add("replica-2")
        after = {key: ring.owner(key) for key in range(512)}
        moved = [key for key in before if before[key] != after[key]]
        # Every moved key must have moved *to* the new member.
        assert all(after[key] == "replica-2" for key in moved)

    def test_balance_within_tolerance(self):
        ring = ConsistentHashRing(["replica-0", "replica-1", "replica-2"])
        counts = {
            name: len(keys)
            for name, keys in ring.assignment(list(range(3000))).items()
        }
        expected = 1000
        for name, count in counts.items():
            assert abs(count - expected) < 0.25 * expected, counts

    def test_assignment_includes_empty_members(self):
        ring = ConsistentHashRing(["replica-0", "replica-1"])
        out = ring.assignment([])
        assert out == {"replica-0": [], "replica-1": []}

    def test_duplicate_add_and_missing_remove_raise(self):
        ring = ConsistentHashRing(["replica-0"])
        with pytest.raises(ValueError):
            ring.add("replica-0")
        with pytest.raises(KeyError):
            ring.remove("replica-9")

    def test_empty_ring_raises(self):
        ring = ConsistentHashRing()
        with pytest.raises(LookupError):
            ring.owner(1)
        with pytest.raises(LookupError):
            ring.preference(1)

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], vnodes=0)


def test_pick_free_port_is_bindable():
    import socket

    port = pick_free_port()
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", port))


# ----------------------------------------------------------------------
# ReplicaSet (real subprocesses)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet():
    config = ServingConfig(
        dataset="G1", backend="serial", num_shards=4, max_wait_ms=0.5
    )
    with ReplicaSet(config, 2, startup_timeout=120.0) as replica_set:
        yield replica_set


class TestReplicaSet:
    def test_ready_records(self, fleet):
        for spec in fleet.replicas:
            info = spec.ready_info
            assert info is not None
            assert info["port"] == spec.port
            assert info["proto"] == 1
            assert "query" in info["capabilities"]
            assert info["dataset"] == "G1"
            assert spec.alive

    def test_owned_shards_partition_the_space(self, fleet):
        owned = fleet.owned_shards(4)
        flattened = sorted(
            shard for shards in owned.values() for shard in shards
        )
        assert flattened == [0, 1, 2, 3]

    def test_poll_reports_running(self, fleet):
        codes = fleet.poll()
        assert codes == {"replica-0": None, "replica-1": None}

    def test_kill_and_restart(self, fleet):
        fleet.terminate(1, sig=signal.SIGKILL)
        assert fleet.poll()["replica-1"] is not None
        spec = fleet.restart(1)
        fleet.wait_ready(timeout=120.0)
        assert spec.alive
        assert spec.ready_info is not None
        # Restart reuses the original port so routers need no update.
        assert spec.ready_info["port"] == spec.port


def test_wait_ready_raises_when_replica_exits_early(tmp_path):
    config = ServingConfig(dataset="does-not-exist", backend="serial")
    replica_set = ReplicaSet(config, 1, startup_timeout=60.0)
    try:
        replica_set.start()
        with pytest.raises(RuntimeError, match="before becoming ready"):
            replica_set.wait_ready(timeout=60.0)
    finally:
        replica_set.stop()


def test_replica_set_validates_count():
    with pytest.raises(ValueError):
        ReplicaSet(ServingConfig(), 0)
