"""Tests for MeLoPPRConfig and the multi-stage MeLoPPRSolver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import AllSelector, CountSelector, RatioSelector
from repro.meloppr.solver import MeLoPPRSolver, StageTaskRecord
from repro.ppr.base import PPRQuery
from repro.ppr.local_ppr import LocalPPRSolver
from repro.ppr.metrics import result_precision


class TestMeLoPPRConfig:
    def test_paper_default(self):
        config = MeLoPPRConfig.paper_default()
        assert config.stage_lengths == (3, 3)
        assert config.total_length == 6
        assert config.score_table_factor == 10

    def test_invalid_stage_lengths(self):
        with pytest.raises(ValueError):
            MeLoPPRConfig(stage_lengths=())
        with pytest.raises(ValueError):
            MeLoPPRConfig(stage_lengths=(3, 0))

    def test_invalid_score_table_factor(self):
        with pytest.raises(ValueError):
            MeLoPPRConfig(score_table_factor=0)

    def test_invalid_residual_tolerance(self):
        with pytest.raises(ValueError):
            MeLoPPRConfig(residual_tolerance=-1.0)

    def test_with_selector_preserves_other_fields(self):
        config = MeLoPPRConfig.paper_default().with_selector(CountSelector(5))
        assert isinstance(config.selector, CountSelector)
        assert config.stage_lengths == (3, 3)

    def test_with_stage_lengths(self):
        config = MeLoPPRConfig.paper_default().with_stage_lengths((2, 2, 2))
        assert config.num_stages == 3
        assert config.total_length == 6


class TestSolverExactness:
    """With every next-stage node expanded, MeLoPPR must equal single-stage PPR."""

    @pytest.fixture()
    def exact_config(self):
        return MeLoPPRConfig(
            stage_lengths=(3, 3),
            selector=AllSelector(),
            score_table_factor=None,
            residual_tolerance=0.0,
            track_memory=False,
        )

    def test_exact_on_ba_graph(self, small_ba_graph, exact_config):
        query = PPRQuery(seed=5, k=50, length=6)
        exact = LocalPPRSolver(small_ba_graph, track_memory=False).solve(query)
        meloppr = MeLoPPRSolver(small_ba_graph, exact_config).solve(query)
        assert result_precision(meloppr, exact) == pytest.approx(1.0)

    def test_exact_scores_match_numerically(self, small_citation_graph, exact_config):
        query = PPRQuery(seed=11, k=30, length=6)
        exact = LocalPPRSolver(small_citation_graph, track_memory=False).solve(query)
        meloppr = MeLoPPRSolver(small_citation_graph, exact_config).solve(query)
        for node, score in exact.scores.items():
            assert meloppr.scores.get(node) == pytest.approx(score, abs=1e-9)

    def test_exact_with_three_stages(self, small_ba_graph):
        config = MeLoPPRConfig(
            stage_lengths=(2, 2, 2),
            selector=AllSelector(),
            score_table_factor=None,
            residual_tolerance=0.0,
            track_memory=False,
        )
        query = PPRQuery(seed=7, k=40, length=6)
        exact = LocalPPRSolver(small_ba_graph, track_memory=False).solve(query)
        meloppr = MeLoPPRSolver(small_ba_graph, config).solve(query)
        assert result_precision(meloppr, exact) == pytest.approx(1.0)


class TestSolverApproximation:
    def test_scores_sum_close_to_one(self, small_ba_graph):
        config = MeLoPPRConfig.paper_default(0.05)
        result = MeLoPPRSolver(small_ba_graph, config).solve_seed(seed=4, k=30)
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-6)

    def test_seed_ranks_first(self, small_citation_graph):
        config = MeLoPPRConfig.paper_default(0.02)
        result = MeLoPPRSolver(small_citation_graph, config).solve_seed(seed=20, k=10)
        assert result.top_k_nodes(1) == [20]

    def test_precision_increases_with_selection_ratio(self, citeseer_standin):
        query = PPRQuery(seed=100, k=100, length=6)
        exact = LocalPPRSolver(citeseer_standin, track_memory=False).solve(query)
        precisions = []
        for ratio in (0.01, 0.3, 1.0):
            config = MeLoPPRConfig(
                stage_lengths=(3, 3),
                selector=RatioSelector(ratio),
                score_table_factor=None,
                track_memory=False,
            )
            result = MeLoPPRSolver(citeseer_standin, config).solve(query)
            precisions.append(result_precision(result, exact))
        assert precisions[0] <= precisions[1] + 0.05
        assert precisions[1] <= precisions[2] + 0.05
        assert precisions[-1] == pytest.approx(1.0, abs=1e-9)

    def test_more_selection_means_more_tasks(self, small_ba_graph):
        query = PPRQuery(seed=4, k=30, length=6)
        few = MeLoPPRSolver(small_ba_graph, MeLoPPRConfig.paper_default(0.01)).solve(query)
        many = MeLoPPRSolver(small_ba_graph, MeLoPPRConfig.paper_default(0.20)).solve(query)
        assert many.metadata["num_tasks"] >= few.metadata["num_tasks"]


class TestSolverBookkeeping:
    def test_task_records_structure(self, small_ba_graph):
        config = MeLoPPRConfig.paper_default(0.05)
        result = MeLoPPRSolver(small_ba_graph, config).solve_seed(seed=3, k=20)
        tasks = result.metadata["tasks"]
        assert all(isinstance(task, StageTaskRecord) for task in tasks)
        assert tasks[0].stage_index == 0
        assert tasks[0].center_node == 3
        assert all(task.subgraph_nodes > 0 for task in tasks)

    def test_stage_one_task_is_first_and_unique(self, small_ba_graph):
        config = MeLoPPRConfig.paper_default(0.1)
        result = MeLoPPRSolver(small_ba_graph, config).solve_seed(seed=3, k=20)
        stage_zero = [t for t in result.metadata["tasks"] if t.stage_index == 0]
        assert len(stage_zero) == 1

    def test_metadata_counts_consistent(self, small_ba_graph):
        config = MeLoPPRConfig.paper_default(0.1)
        result = MeLoPPRSolver(small_ba_graph, config).solve_seed(seed=3, k=20)
        tasks = result.metadata["tasks"]
        assert result.metadata["num_tasks"] == len(tasks)
        assert result.metadata["num_next_stage_tasks"] == len(tasks) - 1
        assert result.metadata["max_subgraph_nodes"] == max(t.subgraph_nodes for t in tasks)

    def test_max_subgraph_smaller_than_baseline_ball(self, citeseer_standin):
        """The memory claim: MeLoPPR's largest sub-graph is the depth-l1 ball,
        which is much smaller than the baseline's depth-L ball."""
        query = PPRQuery(seed=200, k=50, length=6)
        baseline = LocalPPRSolver(citeseer_standin, track_memory=False).solve(query)
        config = MeLoPPRConfig.paper_default(0.02)
        config = MeLoPPRConfig(
            stage_lengths=config.stage_lengths,
            selector=config.selector,
            score_table_factor=config.score_table_factor,
            track_memory=False,
        )
        meloppr = MeLoPPRSolver(citeseer_standin, config).solve(query)
        assert (
            meloppr.metadata["max_subgraph_nodes"]
            < baseline.metadata["subgraph_nodes"]
        )

    def test_query_length_resplit_when_config_differs(self, small_ba_graph):
        config = MeLoPPRConfig.paper_default(0.05)   # configured for L = 6
        result = MeLoPPRSolver(small_ba_graph, config).solve(
            PPRQuery(seed=2, k=10, length=4)
        )
        assert sum(result.metadata["stage_lengths"]) == 4

    def test_score_table_bound_respected(self, small_ba_graph):
        config = MeLoPPRConfig(
            stage_lengths=(3, 3),
            selector=RatioSelector(0.2),
            score_table_factor=1,
            track_memory=False,
        )
        result = MeLoPPRSolver(small_ba_graph, config).solve_seed(seed=3, k=20)
        assert result.metadata["score_table_entries"] <= 20

    def test_timing_buckets(self, small_ba_graph):
        config = MeLoPPRConfig.paper_default(0.05)
        result = MeLoPPRSolver(small_ba_graph, config).solve_seed(seed=3, k=20)
        assert {"bfs", "diffusion", "aggregation", "selection"} <= set(
            result.timing.seconds
        )

    def test_config_property(self, small_ba_graph):
        config = MeLoPPRConfig.paper_default()
        assert MeLoPPRSolver(small_ba_graph, config).config is config
