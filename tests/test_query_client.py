"""The unified ``QueryClient`` API: conformance, retries, and failover.

One behaviour matrix runs over both transports (``tcp`` and ``http``):
normal queries and batches are bit-identical to the in-process engine,
connection refusal / mid-response disconnect / server crash all surface
as ``ClientConnectionError`` (and are healed by ``retries=``), and a
peer advertising a different protocol version raises
``ProtocolMismatchError`` instead of mis-parsing.  After every abuse,
a differential query proves the surviving server still answers exactly
what the serial engine computes.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving import QueryEngine
from repro.serving.frontend import (
    AsyncClient,
    AsyncQueryServer,
    BatchPolicy,
    ClientConnectionError,
    HttpQueryClient,
    HttpQueryServer,
    MicroBatcher,
    ProtocolMismatchError,
    QueryShedError,
    ServerError,
    TcpQueryClient,
    connect_client,
)

TRANSPORTS = ["tcp", "http"]


@pytest.fixture()
def config():
    return MeLoPPRConfig(stage_lengths=(3, 3), track_memory=False)


@pytest.fixture()
def engine(small_ba_graph, config):
    engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
    yield engine
    engine.close()


@pytest.fixture()
def expected_top(engine):
    result = engine.solve_batch([PPRQuery(seed=3, k=10)])[0]
    return [(int(n), float(s)) for n, s in result.top_k()]


def serve(engine, transport):
    """Async context: one batcher behind the requested transport."""

    class _Stack:
        async def __aenter__(self):
            self.batcher = MicroBatcher(engine, BatchPolicy(max_wait_ms=0.5))
            await self.batcher.start()
            server_cls = (
                AsyncQueryServer if transport == "tcp" else HttpQueryServer
            )
            self.server = server_cls(self.batcher)
            return await self.server.start()

        async def __aexit__(self, exc_type, exc, traceback):
            await self.server.stop()
            await self.batcher.stop()

    return _Stack()


async def assert_still_serving(client, expected_top):
    """The differential check: the client's answer == the serial engine's."""
    assert await client.solve(seed=3, k=10) == expected_top


# ----------------------------------------------------------------------
# Conformance across transports
# ----------------------------------------------------------------------


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestConformance:
    def test_query_and_solve_match_engine(
        self, engine, expected_top, transport
    ):
        async def run():
            async with serve(engine, transport) as (host, port):
                async with await connect_client(transport, host, port) as client:
                    assert client.transport == transport
                    response = await client.query(seed=3, k=10)
                    assert response["ok"] is True
                    assert response["proto"] == 1
                    await assert_still_serving(client, expected_top)

        asyncio.run(run())

    def test_query_batch_preserves_order(self, engine, transport):
        async def run():
            async with serve(engine, transport) as (host, port):
                async with await connect_client(transport, host, port) as client:
                    requests = [
                        client.build_query_payload(seed, k=5)
                        for seed in (1, 2, 3, 4, 5)
                    ]
                    responses = await client.query_batch(requests)
                    assert [r["seed"] for r in responses] == [1, 2, 3, 4, 5]
                    assert all(r["ok"] for r in responses)

        asyncio.run(run())

    def test_ping_stats_drain(self, engine, transport):
        async def run():
            async with serve(engine, transport) as (host, port):
                client = await connect_client(transport, host, port)
                try:
                    assert await client.ping() is True
                    stats = await client.stats()
                    assert "admission" in stats
                    ack = await client.drain()
                    assert ack["ok"] is True
                finally:
                    await client.close()

        asyncio.run(run())

    def test_traces_raise_when_tracing_disabled(self, engine, transport):
        async def run():
            async with serve(engine, transport) as (host, port):
                async with await connect_client(transport, host, port) as client:
                    with pytest.raises(ServerError):
                        await client.traces()

        asyncio.run(run())

    def test_shed_is_an_answer_not_a_retry(self, engine, transport):
        async def run():
            async with serve(engine, transport) as (host, port):
                # retries=5 must not apply to protocol rejections.
                async with await connect_client(
                    transport, host, port, retries=5, retry_backoff_ms=1.0
                ) as client:
                    response = await client.query(seed=-1, k=5)
                    assert response["ok"] is False
                    assert response["error"] == "bad_request"
                    with pytest.raises(ServerError):
                        await client.solve(seed=-1, k=5)

        asyncio.run(run())

    def test_connection_refused(self, transport):
        async def run():
            from repro.serving.replica import pick_free_port

            port = pick_free_port()
            with pytest.raises(ClientConnectionError):
                await connect_client(transport, "127.0.0.1", port)

        asyncio.run(run())

    def test_server_crash_then_restart_heals_with_retries(self, transport):
        """A replica crash mid-session: the next query fails transport-level,
        and with ``retries=`` the client rides out the outage and answers
        once the replica is back on the same port."""

        async def run():
            fake = _fake_for(transport)
            async with fake as (host, port):
                client = await connect_client(
                    transport, host, port, retries=10, retry_backoff_ms=10.0
                )
                try:
                    assert (await client.query(seed=3, k=5))["ok"] is True
                    await fake.crash()

                    async def restart_later():
                        await asyncio.sleep(0.05)
                        await fake.restart()

                    restart = asyncio.ensure_future(restart_later())
                    # The retry loop spans the outage window.
                    response = await client.query(seed=3, k=5)
                    assert response["ok"] is True and response["seed"] == 3
                    await restart
                finally:
                    await client.close()

        asyncio.run(run())

    def test_crash_without_retries_raises(self, transport):
        async def run():
            fake = _fake_for(transport)
            async with fake as (host, port):
                client = await connect_client(transport, host, port)
                try:
                    assert (await client.query(seed=3, k=5))["ok"] is True
                    await fake.crash()
                    with pytest.raises(ClientConnectionError):
                        # (The HTTP pool's single internal reconnect also
                        # finds the port closed, so both transports surface
                        # the same typed error.)
                        await client.query(seed=3, k=5)
                finally:
                    await client.close()

        asyncio.run(run())


# ----------------------------------------------------------------------
# Mid-response disconnects and protocol mismatches (scripted fakes)
# ----------------------------------------------------------------------


class _FakeServer:
    """Shared listener scaffolding: scripted failures, crash, restart."""

    def __init__(self, fail_first: int = 0, proto: int = 1) -> None:
        self.fail_first = fail_first
        self.proto = proto
        self.requests_seen = 0
        self._server = None
        self._address = None
        self._writers = set()

    async def __aenter__(self):
        self._server = await asyncio.start_server(
            self._tracked_handle, "127.0.0.1", 0
        )
        self._address = self._server.sockets[0].getsockname()[:2]
        return self._address

    async def __aexit__(self, exc_type, exc, traceback):
        await self.crash()

    async def crash(self):
        """Simulate SIGKILL: abort every connection and stop listening."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.transport.abort()
        self._writers.clear()

    async def restart(self):
        """Come back on the same port (as a supervisor restart would)."""
        assert self._server is None, "crash() first"
        self._server = await asyncio.start_server(
            self._tracked_handle, *self._address
        )

    async def _tracked_handle(self, reader, writer):
        self._writers.add(writer)
        try:
            await self._handle(reader, writer)
        finally:
            self._writers.discard(writer)


class FlakyTcpServer(_FakeServer):
    """Answers like a real TCP front door, but half-writes then drops the
    first ``fail_first`` responses."""

    async def _handle(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = json.loads(line)
                self.requests_seen += 1
                if self.requests_seen <= self.fail_first:
                    writer.write(b'{"id": ')  # torn mid-response
                    await writer.drain()
                    writer.close()
                    return
                response = {
                    "id": request.get("id"),
                    "ok": True,
                    "seed": request.get("seed"),
                    "top": [[request.get("seed"), 1.0]],
                    "proto": self.proto,
                }
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionError, OSError):
            pass


class FlakyHttpServer(_FakeServer):
    """Same contract over HTTP: torn responses first, clean answers after."""

    async def _handle(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                length = 0
                while True:
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = header.decode().partition(":")
                    if name.strip().lower() == "content-length":
                        length = int(value)
                body = await reader.readexactly(length) if length else b""
                request = json.loads(body) if body else {}
                self.requests_seen += 1
                if self.requests_seen <= self.fail_first:
                    writer.write(b"HTTP/1.1 200 OK\r\nContent-Le")  # torn
                    await writer.drain()
                    writer.close()
                    return
                payload = json.dumps(
                    {
                        "ok": True,
                        "seed": request.get("seed"),
                        "top": [[request.get("seed"), 1.0]],
                        "proto": self.proto,
                    }
                ).encode()
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                    + payload
                )
                await writer.drain()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass


def _fake_for(transport):
    return FlakyTcpServer() if transport == "tcp" else FlakyHttpServer()


class TestMidResponseDisconnect:
    def test_tcp_disconnect_surfaces_then_retry_heals(self):
        async def run():
            fake = FlakyTcpServer(fail_first=1)
            async with fake as (host, port):
                async with await TcpQueryClient.connect(host, port) as client:
                    with pytest.raises(ClientConnectionError):
                        await client.query(seed=7, k=5)
                async with await TcpQueryClient.connect(
                    host, port, retries=2, retry_backoff_ms=1.0
                ) as client:
                    response = await client.query(seed=7, k=5)
                    assert response["ok"] is True and response["seed"] == 7

        asyncio.run(run())

    def test_http_disconnect_surfaces_then_retry_heals(self):
        async def run():
            # The pool itself reconnects once per request, so two torn
            # responses are needed to exhaust a retries=0 client.
            fake = FlakyHttpServer(fail_first=2)
            async with fake as (host, port):
                async with await HttpQueryClient.connect(
                    host, port, pool_size=1
                ) as client:
                    with pytest.raises(ClientConnectionError):
                        await client.query(seed=7, k=5)
            fake = FlakyHttpServer(fail_first=2)
            async with fake as (host, port):
                async with await HttpQueryClient.connect(
                    host, port, pool_size=1, retries=3, retry_backoff_ms=1.0
                ) as client:
                    response = await client.query(seed=7, k=5)
                    assert response["ok"] is True and response["seed"] == 7

        asyncio.run(run())

    def test_abused_real_server_still_serves(self, engine, expected_top):
        """After a client saw its peer vanish, a fresh client against the
        real server gets bit-identical answers (the differential)."""

        async def run():
            async with serve(engine, "http") as (host, port):
                fake = FlakyHttpServer(fail_first=2)
                async with fake as (fake_host, fake_port):
                    async with await HttpQueryClient.connect(
                        fake_host, fake_port, pool_size=1
                    ) as client:
                        with pytest.raises(ClientConnectionError):
                            await client.query(seed=3, k=10)
                async with await HttpQueryClient.connect(host, port) as client:
                    await assert_still_serving(client, expected_top)

        asyncio.run(run())


class TestProtocolMismatch:
    def test_tcp_future_version_raises(self):
        async def run():
            fake = FlakyTcpServer(proto=999)
            async with fake as (host, port):
                async with await TcpQueryClient.connect(host, port) as client:
                    with pytest.raises(ProtocolMismatchError) as excinfo:
                        await client.query(seed=7, k=5)
                    assert excinfo.value.peer_version == 999

        asyncio.run(run())

    def test_http_future_version_raises(self):
        async def run():
            fake = FlakyHttpServer(proto=999)
            async with fake as (host, port):
                async with await HttpQueryClient.connect(
                    host, port, pool_size=1
                ) as client:
                    with pytest.raises(ProtocolMismatchError):
                        await client.query(seed=7, k=5)

        asyncio.run(run())

    def test_missing_proto_tolerated_by_client(self):
        """Absence is legal for plain clients (pre-versioning servers);
        only the router requires the field."""

        async def run():
            server = await asyncio.start_server(
                _plain_no_proto_handler, "127.0.0.1", 0
            )
            host, port = server.sockets[0].getsockname()[:2]
            try:
                async with await TcpQueryClient.connect(host, port) as client:
                    response = await client.query(seed=7, k=5)
                    assert response["ok"] is True
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(run())


async def _plain_no_proto_handler(reader, writer):
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            request = json.loads(line)
            response = {
                "id": request.get("id"),
                "ok": True,
                "seed": request.get("seed"),
                "top": [[request.get("seed"), 1.0]],
            }
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    except (ConnectionError, OSError):
        pass


# ----------------------------------------------------------------------
# Back-compat and API shape
# ----------------------------------------------------------------------


def test_async_client_alias_preserved():
    assert AsyncClient is TcpQueryClient


def test_connect_client_rejects_unknown_transport():
    async def run():
        with pytest.raises(ValueError, match="unknown transport"):
            await connect_client("carrier-pigeon", "127.0.0.1", 1)

    asyncio.run(run())


def test_retry_parameters_validated():
    with pytest.raises(ValueError):
        HttpQueryClient("127.0.0.1", 1, retries=-1)
    with pytest.raises(ValueError):
        HttpQueryClient("127.0.0.1", 1, retry_backoff_ms=-1.0)
