"""Tests for the FPGA memory model (Sec. VI-B) and resource model (Table I)."""

from __future__ import annotations

import pytest

from repro.hardware.memory_model import (
    BYTES_PER_WORD,
    FPGAMemoryModel,
    accumulated_table_bytes,
    global_score_table_bytes,
    residual_table_bytes,
    subgraph_bram_bytes,
    subgraph_table_bytes,
)
from repro.hardware.platform import KC705, LAPTOP_CPU
from repro.hardware.resources import PAPER_TABLE_I, ResourceModel


class TestMemoryFormula:
    def test_paper_formula(self):
        """BRAM = 4 * (2|V| + 2|E| + 2|V| + |V|) — Sec. VI-B."""
        num_nodes, num_edges = 123, 456
        expected = 4 * (2 * num_nodes + 2 * num_edges + 2 * num_nodes + num_nodes)
        assert subgraph_bram_bytes(num_nodes, num_edges) == expected

    def test_component_tables(self):
        assert subgraph_table_bytes(10, 20) == 4 * (20 + 40)
        assert accumulated_table_bytes(10) == 80
        assert residual_table_bytes(10) == 40

    def test_word_size(self):
        assert BYTES_PER_WORD == 4

    def test_zero_sizes(self):
        assert subgraph_bram_bytes(0, 0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            subgraph_bram_bytes(-1, 0)

    def test_global_score_table_bytes(self):
        assert global_score_table_bytes(200, 10) == 4 * 2 * 2000

    def test_global_score_table_invalid(self):
        with pytest.raises(ValueError):
            global_score_table_bytes(0, 10)


class TestFPGAMemoryModel:
    def test_total_scales_with_parallelism(self):
        small = FPGAMemoryModel(parallelism=1).total_bytes(100, 200)
        large = FPGAMemoryModel(parallelism=4).total_bytes(100, 200)
        assert large > small

    def test_fits_within_kc705(self):
        model = FPGAMemoryModel(parallelism=16)
        assert model.fits(500, 1500, KC705.total_bram_bytes)

    def test_does_not_fit_for_huge_subgraph(self):
        model = FPGAMemoryModel(parallelism=16)
        assert not model.fits(10**7, 10**8, KC705.total_bram_bytes)

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            FPGAMemoryModel(parallelism=0)

    def test_per_pe_bytes_matches_formula(self):
        model = FPGAMemoryModel(parallelism=2)
        assert model.per_pe_bytes(10, 20) == subgraph_bram_bytes(10, 20)


class TestPlatformSpecs:
    def test_kc705_clock(self):
        assert KC705.clock_hz == 100e6
        assert KC705.cycle_time_s == pytest.approx(1e-8)

    def test_cycles_to_seconds(self):
        assert KC705.cycles_to_seconds(100e6) == pytest.approx(1.0)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            KC705.cycles_to_seconds(-1)

    def test_laptop_bfs_seconds(self):
        assert LAPTOP_CPU.bfs_seconds(LAPTOP_CPU.edges_per_second) == pytest.approx(1.0)

    def test_laptop_calibration(self):
        faster = LAPTOP_CPU.calibrated(1e7)
        assert faster.bfs_seconds(1e7) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            LAPTOP_CPU.calibrated(0.0)

    def test_bfs_seconds_negative_rejected(self):
        with pytest.raises(ValueError):
            LAPTOP_CPU.bfs_seconds(-5)


class TestResourceModel:
    def test_matches_table_i_within_tolerance(self):
        model = ResourceModel()
        for parallelism, reference in PAPER_TABLE_I.items():
            usage = model.usage(parallelism)
            assert usage.lut_fraction == pytest.approx(reference["lut"], abs=0.03)
            assert usage.bram_fraction == pytest.approx(reference["bram"], abs=0.03)

    def test_dsp_usage_negligible(self):
        usage = ResourceModel().usage(16)
        assert usage.dsp_fraction < 0.001

    def test_usage_monotone_in_parallelism(self):
        model = ResourceModel()
        luts = [model.usage(p).luts for p in (1, 2, 4, 8, 16)]
        assert luts == sorted(luts)

    def test_everything_fits_up_to_16(self):
        model = ResourceModel()
        assert model.usage(16).fits()

    def test_max_parallelism_at_least_16(self):
        assert ResourceModel().max_parallelism() >= 16

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            ResourceModel().usage(0)

    def test_utilisation_table_keys(self):
        table = ResourceModel().utilisation_table()
        assert set(table) == {1, 2, 4, 8, 16}
