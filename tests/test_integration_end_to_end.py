"""End-to-end integration tests across the whole stack.

Each test exercises the paper's main claims on the citeseer stand-in:
memory saving (Table II), precision/latency trade-off (Fig. 6/7), and the
consistency of the CPU solver, the FPGA co-simulation and the baselines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.datasets import load_dataset
from repro.hardware.cosim import MeLoPPRFPGASolver
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import AllSelector, RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.ppr.local_ppr import LocalPPRSolver
from repro.ppr.metrics import result_precision
from repro.ppr.monte_carlo import MonteCarloSolver
from repro.ppr.networkx_baseline import NetworkXPPRSolver
from repro.ppr.power_iteration import PowerIterationSolver


SEEDS = (10, 250, 1111)


class TestSolverAgreement:
    """All exact solvers must agree; approximations must be close."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_local_ppr_matches_power_iteration(self, citeseer_standin, seed):
        query = PPRQuery(seed=seed, k=50, length=6)
        local = LocalPPRSolver(citeseer_standin, track_memory=False).solve(query)
        power = PowerIterationSolver(citeseer_standin).solve(query)
        assert result_precision(local, power) == pytest.approx(1.0)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_exhaustive_meloppr_matches_baseline(self, citeseer_standin, seed):
        query = PPRQuery(seed=seed, k=50, length=6)
        config = MeLoPPRConfig(
            stage_lengths=(3, 3),
            selector=AllSelector(),
            score_table_factor=None,
            residual_tolerance=0.0,
            track_memory=False,
        )
        exact = LocalPPRSolver(citeseer_standin, track_memory=False).solve(query)
        meloppr = MeLoPPRSolver(citeseer_standin, config).solve(query)
        assert result_precision(meloppr, exact) == pytest.approx(1.0)

    def test_networkx_agrees_with_internal_baseline(self, citeseer_standin):
        query = PPRQuery(seed=10, k=50, length=6)
        internal = LocalPPRSolver(citeseer_standin, track_memory=False).solve(query)
        external = NetworkXPPRSolver(citeseer_standin).solve(query)
        assert result_precision(external, internal) >= 0.7

    def test_monte_carlo_is_a_sane_estimator(self, citeseer_standin):
        query = PPRQuery(seed=10, k=20, length=6)
        exact = LocalPPRSolver(citeseer_standin, track_memory=False).solve(query)
        estimate = MonteCarloSolver(citeseer_standin, num_walks=5000, rng=1).solve(query)
        assert result_precision(estimate, exact) >= 0.4


class TestMemoryClaim:
    """The Table II claim: MeLoPPR needs (much) less memory than the baseline."""

    def test_cpu_memory_reduction(self, citeseer_standin):
        query = PPRQuery(seed=100, k=200, length=6)
        baseline = LocalPPRSolver(citeseer_standin).solve(query)
        config = MeLoPPRConfig.paper_default(0.02)
        meloppr = MeLoPPRSolver(citeseer_standin, config).solve(query)
        assert meloppr.peak_memory_bytes < baseline.peak_memory_bytes

    def test_modelled_working_set_reduction(self, citeseer_standin):
        query = PPRQuery(seed=100, k=200, length=6)
        baseline = LocalPPRSolver(citeseer_standin, track_memory=False).solve(query)
        config = MeLoPPRConfig(
            stage_lengths=(3, 3),
            selector=RatioSelector(0.02),
            score_table_factor=10,
            track_memory=False,
        )
        meloppr = MeLoPPRSolver(citeseer_standin, config).solve(query)
        assert (
            meloppr.metadata["modelled_bytes"] < baseline.metadata["modelled_bytes"]
        )

    def test_fpga_bram_far_below_cpu_footprint(self, citeseer_standin):
        query = PPRQuery(seed=100, k=200, length=6)
        baseline = LocalPPRSolver(citeseer_standin).solve(query)
        fpga = MeLoPPRFPGASolver(citeseer_standin, parallelism=16).solve(query)
        assert fpga.peak_memory_bytes * 10 < baseline.peak_memory_bytes


class TestTradeoffClaim:
    """The Fig. 6/7 claim: more next-stage nodes -> higher precision, more work."""

    def test_precision_and_work_grow_with_ratio(self, citeseer_standin):
        query = PPRQuery(seed=77, k=100, length=6)
        exact = LocalPPRSolver(citeseer_standin, track_memory=False).solve(query)
        precisions = []
        work = []
        for ratio in (0.01, 0.10, 1.0):
            config = MeLoPPRConfig(
                stage_lengths=(3, 3),
                selector=RatioSelector(ratio),
                score_table_factor=None,
                track_memory=False,
            )
            result = MeLoPPRSolver(citeseer_standin, config).solve(query)
            precisions.append(result_precision(result, exact))
            work.append(result.metadata["num_tasks"])
        assert precisions[0] <= precisions[-1]
        assert work == sorted(work)
        assert precisions[-1] == pytest.approx(1.0, abs=1e-9)

    def test_fpga_latency_below_cpu_meloppr_latency(self, citeseer_standin):
        query = PPRQuery(seed=77, k=100, length=6)
        config = MeLoPPRConfig(
            stage_lengths=(3, 3),
            selector=RatioSelector(0.05),
            score_table_factor=10,
            track_memory=False,
        )
        cpu = MeLoPPRSolver(citeseer_standin, config).solve(query)
        fpga = MeLoPPRFPGASolver(citeseer_standin, config, parallelism=16).solve(query)
        cosim = fpga.metadata["cosim"]
        # The FPGA off-loads the diffusion work, so the modelled FPGA compute
        # time must undercut the measured CPU diffusion time.
        fpga_compute = (
            cosim.fpga_report.diffusion_seconds + cosim.fpga_report.scheduling_seconds
        )
        assert fpga_compute < cpu.timing.seconds["diffusion"]


class TestDatasetSuiteSmoke:
    """Every dataset stand-in supports the full pipeline."""

    @pytest.mark.parametrize("dataset", ["G1", "G2", "G3"])
    def test_full_pipeline_per_dataset(self, dataset):
        graph = load_dataset(dataset)
        seed = int(np.argmax(graph.degrees()))
        query = PPRQuery(seed=seed, k=50, length=6)
        exact = LocalPPRSolver(graph, track_memory=False).solve(query)
        config = MeLoPPRConfig.paper_default(0.05)
        result = MeLoPPRSolver(graph, config).solve(query)
        assert result_precision(result, exact) > 0.3
        assert result.top_k_nodes(1) == [seed]
