"""Tests for the query engine: backend equivalence, ordering, stats."""

from __future__ import annotations

import pytest

from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.ppr.local_ppr import LocalPPRSolver
from repro.serving import (
    QueryEngine,
    SerialBackend,
    SubgraphCache,
    ThreadPoolBackend,
)


@pytest.fixture()
def queries():
    """A repeated-seed batch (seeds recur so the cache has something to hit)."""
    seeds = [3, 11, 3, 27, 11, 3, 42, 27]
    return [PPRQuery(seed=seed, k=40, alpha=0.85, length=6) for seed in seeds]


@pytest.fixture()
def solver(small_ba_graph):
    return MeLoPPRSolver(small_ba_graph, MeLoPPRConfig.paper_default())


def assert_results_identical(actual, expected):
    """Same top-k nodes and scores within 1e-12, per query."""
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got.query == want.query
        assert got.top_k_nodes() == want.top_k_nodes()
        for node, score in want.scores.items():
            assert got.scores.get(node) == pytest.approx(score, abs=1e-12)


class TestBackendEquivalence:
    """QueryEngine.solve_batch must match the sequential solve loop exactly."""

    @pytest.mark.parametrize("with_cache", [False, True], ids=["cold", "cached"])
    @pytest.mark.parametrize(
        "backend_factory",
        [SerialBackend, lambda: ThreadPoolBackend(4)],
        ids=["serial", "threaded"],
    )
    def test_meloppr_matches_sequential(
        self, small_ba_graph, solver, queries, backend_factory, with_cache
    ):
        expected = [solver.solve(query) for query in queries]
        cache = SubgraphCache() if with_cache else None
        with QueryEngine(solver, backend=backend_factory(), cache=cache) as engine:
            results = engine.solve_batch(queries)
        assert_results_identical(results, expected)
        if with_cache:
            assert engine.cache.stats.hits > 0

    def test_non_planning_solver_falls_back_to_solve(self, small_ba_graph, queries):
        solver = LocalPPRSolver(small_ba_graph, track_memory=False)
        expected = [solver.solve(query) for query in queries]
        with QueryEngine(solver, backend=ThreadPoolBackend(2)) as engine:
            results = engine.solve_batch(queries)
        assert_results_identical(results, expected)

    def test_threaded_is_deterministic(self, solver, queries):
        runs = []
        for _ in range(2):
            with QueryEngine(
                solver, backend=ThreadPoolBackend(4), cache=SubgraphCache()
            ) as engine:
                runs.append(engine.solve_batch(queries))
        for first, second in zip(*runs):
            assert first.top_k() == second.top_k()

    def test_concurrent_backend_disables_tracemalloc_tracking(self, solver, queries):
        # tracemalloc is process-global; under a concurrent backend the
        # engine must fall back to the deterministic modelled working set.
        assert solver.config.track_memory
        with QueryEngine(solver, backend=ThreadPoolBackend(4)) as engine:
            results = engine.solve_batch(queries)
        for result in results:
            assert result.peak_memory_bytes == result.metadata["modelled_bytes"]

    def test_fallback_solver_memory_tracking_is_safe_when_threaded(
        self, small_ba_graph, queries
    ):
        import tracemalloc

        # A non-planning solver that measures memory itself: its tracked
        # sections serialise on MemoryTracker's shared lock, so the peaks
        # stay meaningful and the global trace is left off afterwards.
        solver = LocalPPRSolver(small_ba_graph, track_memory=True)
        with QueryEngine(solver, backend=ThreadPoolBackend(4)) as engine:
            results = engine.solve_batch(queries)
        assert not tracemalloc.is_tracing()
        for result in results:
            assert result.peak_memory_bytes > 0

    def test_result_order_matches_query_order(self, solver, queries):
        with QueryEngine(solver, backend=ThreadPoolBackend(4)) as engine:
            results = engine.solve_batch(queries)
        assert [result.query.seed for result in results] == [
            query.seed for query in queries
        ]


class TestSubmitDrain:
    def test_submit_then_drain(self, solver, queries):
        engine = QueryEngine(solver)
        tickets = [engine.submit(query) for query in queries]
        assert tickets == list(range(len(queries)))
        assert engine.num_pending == len(queries)
        results = engine.drain()
        assert engine.num_pending == 0
        assert [result.query.seed for result in results] == [q.seed for q in queries]

    def test_drain_empty(self, solver):
        assert QueryEngine(solver).drain() == []

    def test_solve_batch_empty(self, solver):
        assert QueryEngine(solver).solve_batch([]) == []


class TestCloseWithPending:
    """Regression: close() must not silently drop submitted queries."""

    def test_submit_then_close_raises(self, solver, queries):
        engine = QueryEngine(solver)
        engine.submit(queries[0])
        with pytest.raises(RuntimeError, match="pending"):
            engine.close()
        # The queue is intact: draining still answers the query.
        results = engine.drain()
        assert len(results) == 1
        engine.close()

    def test_close_after_drain_is_clean(self, solver, queries):
        engine = QueryEngine(solver)
        engine.submit(queries[0])
        engine.drain()
        engine.close()  # no pending queries left: must not raise

    def test_explicit_discard_allows_close(self, solver, queries):
        engine = QueryEngine(solver)
        engine.submit(queries[0])
        engine.close(discard_pending=True)
        assert engine.num_pending == 0

    def test_context_manager_surfaces_pending_queries(self, solver, queries):
        backend = ThreadPoolBackend(2)
        with pytest.raises(RuntimeError, match="pending"):
            with QueryEngine(solver, backend=backend) as engine:
                engine.solve_batch([queries[0]])  # spin the pool up
                engine.submit(queries[1])
                # exiting the block without drain() must not drop the query
        # ...but the backend must still have been shut down (no thread leak).
        assert backend._executor is None

    def test_context_manager_does_not_mask_body_exception(self, solver, queries):
        # An exception inside the block wins over the pending-queries error.
        with pytest.raises(KeyError, match="boom"):
            with QueryEngine(solver) as engine:
                engine.submit(queries[0])
                raise KeyError("boom")

    def test_close_idempotent_when_empty(self, solver):
        engine = QueryEngine(solver)
        engine.close()
        engine.close()

    def test_failed_close_still_releases_backend(self, solver, queries):
        # Regression (ISSUE 4): the pending-queries error must not leave the
        # backend's OS resources (threads, worker processes, shared memory)
        # alive — close() releases the backend in a finally.
        class RecordingBackend(SerialBackend):
            closed = 0

            def close(self):
                self.closed += 1

        backend = RecordingBackend()
        engine = QueryEngine(solver, backend=backend)
        engine.submit(queries[0])
        with pytest.raises(RuntimeError, match="pending"):
            engine.close()
        assert backend.closed == 1
        # The queue survives: draining still answers the query.
        assert len(engine.drain()) == 1
        engine.close()
        assert backend.closed == 2


class TestStats:
    def test_engine_stats_populated(self, solver, queries):
        cache = SubgraphCache()
        with QueryEngine(solver, cache=cache) as engine:
            engine.solve_batch(queries)
            engine.solve_batch(queries)
            stats = engine.stats()
        assert stats.backend == "serial"
        assert stats.queries_served == 2 * len(queries)
        assert stats.batches == 2
        assert stats.wall_seconds > 0
        assert stats.throughput_qps > 0
        assert stats.mean_latency_seconds > 0
        assert stats.min_latency_seconds <= stats.max_latency_seconds
        assert stats.cache is not None and stats.cache.hits > 0
        payload = stats.as_dict()
        assert payload["queries_served"] == 2 * len(queries)
        assert payload["cache"]["hit_rate"] > 0

    def test_per_query_serving_metadata(self, solver, queries):
        with QueryEngine(solver, cache=SubgraphCache()) as engine:
            results = engine.solve_batch(queries)
        for result in results:
            serving = result.metadata["serving"]
            assert serving["backend"] == "serial"
            assert serving["latency_seconds"] >= 0
            assert serving["cache_enabled"] is True
        # Repeated seeds after the first occurrence hit the warm cache.
        assert any(result.metadata["cache_hits"] > 0 for result in results)

    def test_cache_hit_and_miss_counts_in_result_metadata(self, solver):
        query = PPRQuery(seed=3, k=20)
        with QueryEngine(solver, cache=SubgraphCache()) as engine:
            cold = engine.solve_batch([query])[0]
            warm = engine.solve_batch([query])[0]
        assert cold.metadata["cache_hits"] == 0
        assert cold.metadata["cache_misses"] == cold.metadata["num_tasks"]
        assert warm.metadata["cache_hits"] == warm.metadata["num_tasks"]
        assert warm.metadata["cache_misses"] == 0

    def test_solve_many_routes_through_engine(self, solver, queries):
        results = solver.solve_many(queries)
        expected = [solver.solve(query) for query in queries]
        assert_results_identical(results, expected)
        for result in results:
            assert result.metadata["serving"]["backend"] == "serial"


def all_cache_counters_zero(cache_stats):
    """True when every *historical* counter of a CacheStats is zero."""
    return (
        cache_stats.hits
        == cache_stats.misses
        == cache_stats.evictions
        == cache_stats.rejected
        == cache_stats.expired
        == 0
    )


class TestResetStatsCoversEveryCounterSource:
    """Regression: per-interval resets must reach *all* aggregated counters.

    ``stats()`` folds several counter sources into one snapshot — the
    engine accumulator, the router's per-shard/fallback/result caches, the
    engine-level caches, and a stage-task backend's worker caches.
    ``reset_stats(reset_cache_stats=True)`` historically reset only the
    engine-side sources, so the first interval report after a reset still
    carried stale cache counters (observed as impossible per-interval hit
    rates in server metrics).
    """

    def test_sharded_reset_zeroes_per_shard_and_result_counters(
        self, small_ba_graph, queries
    ):
        from repro.graph.partition import partition_graph
        from repro.serving import ShardRouter

        partition = partition_graph(small_ba_graph, 3, strategy="hash", halo_depth=3)
        router = ShardRouter(partition, result_cache_bytes=16 << 20)
        with QueryEngine(MeLoPPRSolver(small_ba_graph), router=router) as engine:
            engine.solve_batch(queries)
            engine.reset_stats(reset_cache_stats=True)
            stats = engine.stats()
        assert stats.queries_served == 0
        assert all_cache_counters_zero(stats.cache)
        assert all_cache_counters_zero(stats.result_cache)
        for shard in stats.router.shards:
            assert shard.local_extractions == 0
            assert all_cache_counters_zero(shard.cache)
            assert all_cache_counters_zero(shard.result_cache)

    def test_process_backend_reset_zeroes_worker_cache_counters(
        self, small_ba_graph, queries
    ):
        from repro.serving import ProcessPoolBackend, ScoreTableCache

        backend = ProcessPoolBackend(num_workers=2, cache_bytes=16 << 20)
        with QueryEngine(
            MeLoPPRSolver(small_ba_graph),
            backend=backend,
            result_cache=ScoreTableCache(),
        ) as engine:
            engine.solve_batch(queries)
            before = engine.stats()
            assert before.cache.lookups > 0  # worker caches saw traffic
            engine.reset_stats(reset_cache_stats=True)
            stats = engine.stats()
        assert stats.queries_served == 0
        # The regression: worker-side counters used to survive the reset and
        # leak into the next interval's aggregate.
        assert all_cache_counters_zero(stats.cache)
        assert all_cache_counters_zero(stats.result_cache)
        # Warm entries survive — only history was zeroed.
        assert stats.cache.num_entries > 0

    def test_reset_zeroes_tracing_counters_but_keeps_the_ring(
        self, small_ba_graph, queries
    ):
        from repro.serving import Tracer

        tracer = Tracer(sample_rate=1.0)
        with QueryEngine(MeLoPPRSolver(small_ba_graph), tracer=tracer) as engine:
            contexts = [
                tracer.start_trace("request", seed=query.seed)
                for query in queries
            ]
            engine.solve_batch(queries, contexts)
            for ctx in contexts:
                ctx.finish(status="ok")
            before = engine.stats().tracing
            assert before.started == len(queries)
            assert before.sampled == len(queries)
            assert before.finished == len(queries)
            assert before.spans > 0
            engine.reset_stats(reset_cache_stats=True)
            stats = engine.stats()
        # Tracing counters are serving counters: a per-interval reset must
        # zero them even without reset_cache_stats, like the accumulator.
        tracing = stats.tracing
        assert tracing is not None
        assert tracing.started == 0
        assert tracing.sampled == 0
        assert tracing.finished == 0
        assert tracing.spans == 0
        assert tracing.slow_traces == 0
        assert tracing.dropped == 0
        # The ring is debugging state, not a counter: traces survive.
        assert len(tracer.traces()) == len(queries)
        assert tracing.sample_rate == 1.0

    def test_reset_without_cache_flag_still_resets_tracing(
        self, small_ba_graph, queries
    ):
        from repro.serving import Tracer

        tracer = Tracer(sample_rate=1.0)
        with QueryEngine(MeLoPPRSolver(small_ba_graph), tracer=tracer) as engine:
            ctx = tracer.start_trace("request")
            engine.solve_batch(queries[:1], [ctx])
            ctx.finish()
            engine.reset_stats()
            stats = engine.stats()
        assert stats.tracing.started == 0
        assert stats.tracing.finished == 0
