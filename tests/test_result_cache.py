"""Unit tests for the cross-query stage-one result cache.

Covers the :class:`~repro.serving.result_cache.ScoreTableCache` container
semantics (byte-budgeted LRU, TTL expiry, explicit invalidation, byte
accounting), the planner's snapshot/resume pair, the score-table
snapshot round trip, and — the invalidation regressions — the guarantee
that a rebuilt or different graph can never be served a stale table
(structural fingerprints in the key).
"""

from __future__ import annotations

import pytest

from repro.graph.generators import barabasi_albert_graph
from repro.meloppr.aggregation import GlobalScoreTable
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.planner import MeLoPPRPlan, execute_plan, execute_stage_task
from repro.meloppr.selection import CountSelector, RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving import QueryEngine, ScoreTableCache, ShardRouter, stage_one_cache_key
from repro.graph.partition import partition_graph
from repro.serving.result_cache import _entry_nbytes


def make_state(graph, seed=3, k=20, length=6, config=None):
    """Run one query's stage one and return (plan key, captured state)."""
    solver = MeLoPPRSolver(graph, config)
    plan = solver.plan(PPRQuery(seed=seed, k=k, length=length), track_memory=False)
    key = stage_one_cache_key(plan)
    plan.complete_stage(
        execute_stage_task(plan.graph, task, timing=plan.timing)
        for task in plan.pending_tasks
    )
    state = plan.stage_one_state()
    plan.close()
    return key, state


class TestScoreTableCacheContainer:
    def test_put_get_round_trip(self, small_ba_graph):
        cache = ScoreTableCache()
        key, state = make_state(small_ba_graph)
        assert cache.get(key) is None
        assert cache.put(key, state)
        assert cache.get(key) is state
        assert key in cache
        assert len(cache) == 1
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert stats.current_bytes == _entry_nbytes(state)

    def test_lru_eviction_under_byte_budget(self, small_ba_graph):
        states = [make_state(small_ba_graph, seed=seed) for seed in (1, 2, 3)]
        sizes = [_entry_nbytes(state) for _, state in states]
        # Budget fits the two largest entries but not all three.
        budget = max(sizes[0] + sizes[1], sizes[1] + sizes[2], sizes[0] + sizes[2])
        cache = ScoreTableCache(max_bytes=budget)
        for key, state in states:
            cache.put(key, state)
        cache.validate()
        stats = cache.stats
        assert stats.evictions >= 1
        assert stats.current_bytes <= budget
        # The most recently inserted entry must have survived.
        assert cache.get(states[-1][0]) is states[-1][1]

    def test_oversized_entry_rejected(self, small_ba_graph):
        key, state = make_state(small_ba_graph)
        cache = ScoreTableCache(max_bytes=_entry_nbytes(state) - 1)
        assert not cache.put(key, state)
        assert cache.stats.rejected == 1
        assert len(cache) == 0

    def test_reinsert_replaces_without_double_count(self, small_ba_graph):
        cache = ScoreTableCache()
        key, state = make_state(small_ba_graph)
        cache.put(key, state)
        cache.put(key, state)
        cache.validate()
        assert len(cache) == 1
        assert cache.stats.current_bytes == _entry_nbytes(state)

    def test_ttl_expiry_counts_as_miss(self, small_ba_graph):
        now = [0.0]
        cache = ScoreTableCache(ttl_seconds=10.0, clock=lambda: now[0])
        key, state = make_state(small_ba_graph)
        cache.put(key, state)
        now[0] = 5.0
        assert cache.get(key) is state
        now[0] = 15.1  # 10s past the insert
        assert cache.get(key) is None
        stats = cache.stats
        assert stats.expired == 1
        assert stats.misses == 1 and stats.hits == 1
        assert stats.num_entries == 0 and stats.current_bytes == 0
        cache.validate()

    def test_put_reclaims_expired_before_evicting_live(self, small_ba_graph):
        now = [0.0]
        states = [make_state(small_ba_graph, seed=seed) for seed in (1, 2, 3)]
        budget = 3 * max(_entry_nbytes(state) for _, state in states)
        cache = ScoreTableCache(max_bytes=budget, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put(*states[0])
        now[0] = 11.0  # first entry is dead but unswept
        assert len(cache) == 1  # the dead bytes still sit in the budget
        cache.put(*states[1])  # ...until put() sweeps them
        cache.validate()
        stats = cache.stats
        # The dead entry was reclaimed as 'expired', not blamed on the budget.
        assert stats.expired == 1
        assert stats.evictions == 0
        assert stats.num_entries == 1
        assert cache.get(states[1][0]) is states[1][1]

    def test_explicit_invalidation(self, small_ba_graph):
        cache = ScoreTableCache()
        key, state = make_state(small_ba_graph)
        cache.put(key, state)
        assert cache.invalidate(key)
        assert not cache.invalidate(key)
        assert cache.get(key) is None
        # Invalidation is not an eviction — live state just shrank.
        assert cache.stats.evictions == 0
        cache.validate()

    def test_reset_stats_keeps_entries_like_subgraph_cache(self, small_ba_graph):
        cache = ScoreTableCache()
        key, state = make_state(small_ba_graph)
        cache.put(key, state)
        cache.get(key)
        cache.get(("missing",))
        cache.reset_stats()
        stats = cache.stats
        assert stats.hits == stats.misses == stats.evictions == 0
        assert stats.rejected == stats.expired == 0
        # Live state survives, exactly like SubgraphCache.reset_stats().
        assert stats.num_entries == 1
        assert stats.current_bytes == _entry_nbytes(state)
        assert cache.get(key) is state

    def test_clear_drops_entries_keeps_counters(self, small_ba_graph):
        cache = ScoreTableCache()
        key, state = make_state(small_ba_graph)
        cache.put(key, state)
        cache.get(key)
        cache.clear()
        stats = cache.stats
        assert stats.num_entries == 0 and stats.current_bytes == 0
        assert stats.hits == 1  # history survives, like SubgraphCache.clear()
        cache.validate()

    def test_validate_detects_corruption(self, small_ba_graph):
        cache = ScoreTableCache()
        key, state = make_state(small_ba_graph)
        cache.put(key, state)
        cache._current_bytes += 1  # simulate bookkeeping drift
        with pytest.raises(AssertionError):
            cache.validate()

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ScoreTableCache(max_bytes=0)
        with pytest.raises(ValueError):
            ScoreTableCache(ttl_seconds=0.0)

    def test_repr_mentions_budget_and_ttl(self, small_ba_graph):
        cache = ScoreTableCache(max_bytes=1 << 20, ttl_seconds=2.5)
        text = repr(cache)
        assert "1048576" in text and "2.5s" in text


class TestStageOneCacheKey:
    @pytest.fixture(scope="class")
    def graph(self):
        return barabasi_albert_graph(120, 2, rng=9, name="key-graph")

    def key_for(self, graph, **kwargs):
        config = kwargs.pop("config", None)
        solver = MeLoPPRSolver(graph, config)
        return stage_one_cache_key(
            solver.plan(PPRQuery(**kwargs), track_memory=False)
        )

    def test_same_query_same_key(self, graph):
        assert self.key_for(graph, seed=3, k=20) == self.key_for(graph, seed=3, k=20)

    def test_k_changes_the_key(self, graph):
        # Different k bounds the score table differently — folds diverge.
        assert self.key_for(graph, seed=3, k=20) != self.key_for(graph, seed=3, k=40)

    def test_alpha_length_and_seed_change_the_key(self, graph):
        base = self.key_for(graph, seed=3, k=20)
        assert self.key_for(graph, seed=4, k=20) != base
        assert self.key_for(graph, seed=3, k=20, alpha=0.9) != base
        assert self.key_for(graph, seed=3, k=20, length=4) != base

    def test_selector_changes_the_key(self, graph):
        ratio = MeLoPPRConfig(selector=RatioSelector(0.02), track_memory=False)
        count = MeLoPPRConfig(selector=CountSelector(4), track_memory=False)
        assert self.key_for(graph, config=ratio, seed=3, k=20) != self.key_for(
            graph, config=count, seed=3, k=20
        )

    def test_selector_parameters_change_the_key_without_custom_repr(self, graph):
        # Regression: a user selector subclass with knobs but no __repr__
        # override reprs as "Custom()" for every parameterisation — the key
        # must still tell the instances apart (it reads the instance dict).
        from repro.meloppr.selection import NextStageSelector

        class TopFraction(NextStageSelector):
            def __init__(self, fraction):
                self.fraction = fraction

            def select(self, nodes, residuals):
                ordered = self._order_by_residual(nodes, residuals)
                keep = max(1, int(len(ordered) * self.fraction))
                return ordered[:keep]

        narrow = MeLoPPRConfig(selector=TopFraction(0.01), track_memory=False)
        wide = MeLoPPRConfig(selector=TopFraction(0.5), track_memory=False)
        assert repr(narrow.selector) == repr(wide.selector)  # the trap
        assert self.key_for(graph, config=narrow, seed=3, k=20) != self.key_for(
            graph, config=wide, seed=3, k=20
        )
        # Equal parameters still share the key (reuse across rebuilt configs).
        twin = MeLoPPRConfig(selector=TopFraction(0.01), track_memory=False)
        assert self.key_for(graph, config=narrow, seed=3, k=20) == self.key_for(
            graph, config=twin, seed=3, k=20
        )

    def test_array_valued_selector_knobs_do_not_collide(self, graph):
        # numpy elides large arrays in repr, so two masks differing only in
        # the elided middle would repr identically — the key must digest the
        # raw bytes instead.
        import numpy as np

        from repro.meloppr.selection import NextStageSelector

        class MaskSelector(NextStageSelector):
            def __init__(self, mask):
                self.mask = mask

            def select(self, nodes, residuals):
                return self._order_by_residual(nodes, residuals)

        mask_a = np.zeros(5000)
        mask_b = np.zeros(5000)
        mask_b[2500] = 1.0  # elided from repr
        assert repr(mask_a) == repr(mask_b)  # the trap
        config_a = MeLoPPRConfig(selector=MaskSelector(mask_a), track_memory=False)
        config_b = MeLoPPRConfig(selector=MaskSelector(mask_b), track_memory=False)
        assert self.key_for(graph, config=config_a, seed=3, k=20) != self.key_for(
            graph, config=config_b, seed=3, k=20
        )

    def test_rebuilt_identical_graph_shares_the_key(self, graph):
        rebuilt = barabasi_albert_graph(120, 2, rng=9, name="rebuilt-elsewhere")
        assert graph.fingerprint() == rebuilt.fingerprint()
        assert self.key_for(graph, seed=3, k=20) == self.key_for(
            rebuilt, seed=3, k=20
        )

    def test_different_topology_changes_the_key(self, graph):
        other = barabasi_albert_graph(120, 2, rng=10, name="key-graph")
        assert graph.fingerprint() != other.fingerprint()
        assert self.key_for(graph, seed=3, k=20) != self.key_for(other, seed=3, k=20)


class TestScoreTableSnapshot:
    def test_round_trip_preserves_future_behaviour(self):
        table = GlobalScoreTable(capacity=4)
        for node, score in ((1, 0.5), (2, 0.25), (3, 0.125), (4, 0.4), (5, 0.3)):
            table.add(node, score)  # forces an eviction
        twin = GlobalScoreTable.from_snapshot(table.snapshot())
        assert twin.top_k(4) == table.top_k(4)
        assert twin.total_updates == table.total_updates
        assert twin.total_evictions == table.total_evictions
        # Identical subsequent folds produce identical tables.
        for target in (table, twin):
            target.add(6, 0.6)
            target.add(2, 0.01)
        assert twin.top_k(4) == table.top_k(4)
        assert dict(twin.to_sparse_vector().items()) == dict(
            table.to_sparse_vector().items()
        )

    def test_resurrecting_table_snapshot_keeps_evicted_ledger(self):
        table = GlobalScoreTable(capacity=2, evictions_are_final=False)
        table.add(1, 0.5)
        table.add(2, 0.4)
        table.add(3, 0.6)  # evicts node 2 into the ledger
        twin = GlobalScoreTable.from_snapshot(table.snapshot())
        # Re-adding enough mass resurrects node 2 with its ledger total
        # (0.4 + 0.5) in both tables — proof the ledger was restored.
        table.add(2, 0.5)
        twin.add(2, 0.5)
        assert twin.get(2) == table.get(2) == pytest.approx(0.9)


class TestPlanResume:
    @pytest.fixture(scope="class")
    def graph(self):
        return barabasi_albert_graph(150, 2, rng=4, name="resume-graph")

    def test_resumed_plan_is_bit_identical(self, graph):
        query = PPRQuery(seed=7, k=25, length=6)
        solver = MeLoPPRSolver(graph)
        reference = dict(solver.solve(query).scores.items())
        _, state = make_state(graph, seed=7, k=25, length=6)
        resumed = MeLoPPRPlan.from_stage_one_table(
            graph, solver.config, query, state, track_memory=False
        )
        assert resumed.resumed
        # Pending work is stage two only.
        assert all(task.stage_index == 1 for task in resumed.pending_tasks)
        result = execute_plan(resumed)
        assert dict(result.scores.items()) == reference
        # Stage-one records were restored, so the work ledger is complete.
        assert result.metadata["num_tasks"] == len(
            solver.solve(query).metadata["tasks"]
        )

    def test_single_stage_state_resumes_to_done(self, graph):
        query = PPRQuery(seed=5, k=10, length=1)  # collapses to one stage
        solver = MeLoPPRSolver(graph)
        reference = dict(solver.solve(query).scores.items())
        _, state = make_state(graph, seed=5, k=10, length=1)
        assert state.done
        resumed = MeLoPPRPlan.from_stage_one_table(
            graph, solver.config, query, state, track_memory=False
        )
        assert resumed.done
        assert dict(resumed.finish().scores.items()) == reference

    def test_state_mismatches_are_rejected(self, graph):
        config = MeLoPPRConfig(track_memory=False)
        _, state = make_state(graph, seed=7, k=25, length=6, config=config)
        with pytest.raises(ValueError, match="stage split"):
            MeLoPPRPlan.from_stage_one_table(
                graph, config, PPRQuery(seed=7, k=25, length=4), state
            )
        with pytest.raises(ValueError, match="alpha"):
            MeLoPPRPlan.from_stage_one_table(
                graph, config, PPRQuery(seed=7, k=25, length=6, alpha=0.7), state
            )
        with pytest.raises(ValueError, match="capacity"):
            MeLoPPRPlan.from_stage_one_table(
                graph, config, PPRQuery(seed=7, k=50, length=6), state
            )

    def test_snapshot_timing_is_enforced(self, graph):
        solver = MeLoPPRSolver(graph)
        plan = solver.plan(PPRQuery(seed=3, k=20), track_memory=False)
        with pytest.raises(RuntimeError, match="first stage"):
            plan.stage_one_state()  # nothing folded yet
        result_plan = solver.plan(PPRQuery(seed=3, k=20), track_memory=False)
        execute_plan(result_plan)
        with pytest.raises(RuntimeError, match="first stage"):
            result_plan.stage_one_state()  # both stages folded
        plan.close()

    def test_resumed_plan_refuses_to_snapshot(self, graph):
        solver = MeLoPPRSolver(graph)
        query = PPRQuery(seed=7, k=25, length=6)
        _, state = make_state(graph, seed=7, k=25, length=6)
        resumed = MeLoPPRPlan.from_stage_one_table(
            graph, solver.config, query, state, track_memory=False
        )
        with pytest.raises(RuntimeError, match="resumed"):
            resumed.stage_one_state()
        resumed.close()


class TestInvalidationRegressions:
    """A different graph fingerprint must never serve a stale table."""

    def test_rebuilt_different_graph_never_hits(self):
        first = barabasi_albert_graph(150, 2, rng=4, name="host")
        # Same name, same size, different topology — the dangerous rebuild.
        second = barabasi_albert_graph(150, 2, rng=5, name="host")
        shared = ScoreTableCache()
        query = PPRQuery(seed=9, k=20, length=6)
        with QueryEngine(MeLoPPRSolver(first), result_cache=shared) as engine:
            engine.solve_batch([query, query])
        assert shared.stats.hits == 1
        reference = dict(MeLoPPRSolver(second).solve(query).scores.items())
        with QueryEngine(MeLoPPRSolver(second), result_cache=shared) as engine:
            (result,) = engine.solve_batch([query])
        # The rebuilt graph missed (fresh fingerprint) and got its own answer.
        assert shared.stats.hits == 1
        assert shared.stats.misses >= 2
        assert dict(result.scores.items()) == reference

    def test_repartitioned_router_never_serves_stale(self, small_ba_graph):
        query = PPRQuery(seed=11, k=20, length=6)
        reference = dict(MeLoPPRSolver(small_ba_graph).solve(query).scores.items())
        partition = partition_graph(small_ba_graph, 3, strategy="hash", halo_depth=3)
        router = ShardRouter(partition, result_cache_bytes=1 << 20)
        with QueryEngine(MeLoPPRSolver(small_ba_graph), router=router) as engine:
            engine.solve_batch([query, query])
            stats = engine.stats()
        assert stats.result_cache.hits == 1
        # Repartitioning rebuilds the router; the graph (and its fingerprint)
        # are unchanged, so the *new* router's cold caches simply miss, and
        # clearing the old router's result caches is the explicit path.
        router.clear_result_caches()
        assert all(
            router.result_cache_for(seed).stats.num_entries == 0
            for seed in range(small_ba_graph.num_nodes)
        )
        repartition = partition_graph(
            small_ba_graph, 4, strategy="degree", halo_depth=3
        )
        rerouter = ShardRouter(repartition, result_cache_bytes=1 << 20)
        with QueryEngine(MeLoPPRSolver(small_ba_graph), router=rerouter) as engine:
            (result,) = engine.solve_batch([query])
            stats = engine.stats()
        assert stats.result_cache.hits == 0
        assert dict(result.scores.items()) == reference

    def test_engine_rejects_result_cache_with_router(self, small_ba_graph):
        partition = partition_graph(small_ba_graph, 2, strategy="hash", halo_depth=3)
        router = ShardRouter(partition)
        with pytest.raises(ValueError, match="result_cache"):
            QueryEngine(
                MeLoPPRSolver(small_ba_graph),
                router=router,
                result_cache=ScoreTableCache(),
            )


class FakeClock:
    """Injected monotonic clock for deterministic TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTTLBudgetPinning:
    """Expired entries must free their bytes on every probe path.

    Regression: ``__contains__`` used to answer ``False`` for a TTL-expired
    entry while leaving it (and its bytes) in the table, and ``put``/
    ``resize`` evicted *live* LRU entries under budget pressure while dead
    ones kept pinning the budget.
    """

    def test_contains_frees_expired_bytes(self, small_ba_graph):
        clock = FakeClock()
        cache = ScoreTableCache(ttl_seconds=10.0, clock=clock)
        key, state = make_state(small_ba_graph)
        cache.put(key, state)
        assert key in cache
        assert cache.stats.current_bytes == _entry_nbytes(state)
        clock.advance(10.0)
        assert key not in cache
        stats = cache.stats
        assert stats.current_bytes == 0
        assert len(cache) == 0
        assert stats.expired == 1
        # Membership probes are not lookups: hit/miss counters untouched.
        assert stats.hits == 0 and stats.misses == 0
        cache.validate()

    def test_put_sweeps_expired_before_evicting_live(self, small_ba_graph):
        clock = FakeClock()
        states = [make_state(small_ba_graph, seed=seed) for seed in (1, 2, 3)]
        budget = sum(_entry_nbytes(state) for _, state in states)
        cache = ScoreTableCache(max_bytes=budget, ttl_seconds=5.0, clock=clock)
        for key, state in states[:2]:
            cache.put(key, state)
        clock.advance(5.0)  # both stored entries are now dead
        assert cache.put(*states[2])
        stats = cache.stats
        # The dead bytes were reclaimed as expiry, never as eviction.
        assert stats.expired == 2
        assert stats.evictions == 0
        assert len(cache) == 1
        assert stats.current_bytes == _entry_nbytes(states[2][1])
        assert cache.get(states[2][0]) is states[2][1]
        cache.validate()

    def test_resize_sweeps_expired_before_evicting_live(self, small_ba_graph):
        clock = FakeClock()
        old_key, old_state = make_state(small_ba_graph, seed=1)
        live_key, live_state = make_state(small_ba_graph, seed=2)
        cache = ScoreTableCache(ttl_seconds=5.0, clock=clock)
        cache.put(old_key, old_state)
        clock.advance(5.0)
        cache.put(live_key, live_state)
        # Shrink to exactly the live entry: the dead entry's bytes must not
        # force the live one out.
        assert cache.resize(_entry_nbytes(live_state)) == 0
        stats = cache.stats
        assert stats.expired == 1
        assert stats.evictions == 0
        assert cache.get(live_key) is live_state
        cache.validate()

    def test_get_expired_is_miss_and_frees(self, small_ba_graph):
        clock = FakeClock()
        cache = ScoreTableCache(ttl_seconds=2.0, clock=clock)
        key, state = make_state(small_ba_graph)
        cache.put(key, state)
        clock.advance(2.0)
        assert cache.get(key) is None
        stats = cache.stats
        assert stats.expired == 1 and stats.misses == 1
        assert stats.current_bytes == 0
        cache.validate()


class TestApplyUpdateMigration:
    """Surgical cross-topology migration: drop in-reach, rekey the rest."""

    def setup_entries(self, graph, seeds=(1, 2, 3)):
        cache = ScoreTableCache()
        keys = {}
        for seed in seeds:
            key, state = make_state(graph, seed=seed)
            assert cache.put(key, state)
            keys[seed] = (key, state)
        return cache, keys

    def test_drop_in_reach_rekey_the_rest(self, small_ba_graph):
        import numpy as np

        cache, keys = self.setup_entries(small_ba_graph)
        old_fp = small_ba_graph.fingerprint()
        stage_one = int(keys[1][0][1][0])
        # Seed 2 is within its stage-one reach of the update; 1 and 3 are not.
        distances = np.full(
            small_ba_graph.num_nodes, stage_one + 1, dtype=np.int64
        )
        distances[2] = stage_one
        dropped, rekeyed = cache.apply_update(old_fp, "newfp", distances)
        assert (dropped, rekeyed) == (1, 2)
        assert len(cache) == 2
        # Dropped entries are invalidations, not evictions.
        assert cache.stats.evictions == 0
        # Survivors answer under the new fingerprint, never the old one.
        for seed in (1, 3):
            old_key, state = keys[seed]
            assert old_key not in cache
            assert cache.get(old_key[:-1] + ("newfp",)) is state
        assert keys[2][0] not in cache
        cache.validate()

    def test_rekey_preserves_lru_order(self, small_ba_graph):
        import numpy as np

        cache, keys = self.setup_entries(small_ba_graph)
        budget = cache.stats.current_bytes
        old_fp = small_ba_graph.fingerprint()
        distances = np.full(small_ba_graph.num_nodes, 99, dtype=np.int64)
        dropped, rekeyed = cache.apply_update(old_fp, "newfp", distances)
        assert (dropped, rekeyed) == (0, 3)
        assert cache.stats.current_bytes == budget
        # Shrinking to two entries must evict the *least recent* survivor
        # (seed 1): rekeying preserved insertion/recency order.
        cache.resize(budget - 1)
        assert keys[1][0][:-1] + ("newfp",) not in cache
        assert keys[2][0][:-1] + ("newfp",) in cache
        assert keys[3][0][:-1] + ("newfp",) in cache
        cache.validate()

    def test_foreign_fingerprints_untouched(self, small_ba_graph):
        import numpy as np

        other = barabasi_albert_graph(
            small_ba_graph.num_nodes, 2, rng=99, name="other"
        )
        cache = ScoreTableCache()
        host_key, host_state = make_state(small_ba_graph, seed=4)
        other_key, other_state = make_state(other, seed=4)
        cache.put(host_key, host_state)
        cache.put(other_key, other_state)
        distances = np.zeros(small_ba_graph.num_nodes, dtype=np.int64)
        dropped, rekeyed = cache.apply_update(
            small_ba_graph.fingerprint(), "newfp", distances
        )
        # The host entry is in reach (distance 0) and drops; the other
        # graph's entry carries a different fingerprint and is left alone.
        assert (dropped, rekeyed) == (1, 0)
        assert cache.get(other_key) is other_state
        cache.validate()
