"""Smoke and schema tests for the E11 latency study and its benchmark.

Like the E9/E10 schema suites: run the study with tiny parameters and
validate the JSON document the benchmark promises (latency percentiles, shed
accounting, batch/dedup counters), plus the open-loop workload helpers in
``repro.experiments.workloads``.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.latency_study import format_latency, run_latency_study
from repro.experiments.workloads import (
    make_open_loop_workload,
    make_poisson_arrivals,
)
from repro.serving.frontend import BatchPolicy

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def load_bench_module(name):
    """Import a benchmark script by file path (benchmarks/ is not a package)."""
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestPoissonWorkload:
    def test_arrival_times_are_increasing(self):
        arrivals = make_poisson_arrivals(50, rate_qps=100.0, rng=7)
        assert arrivals.shape == (50,)
        assert np.all(np.diff(arrivals) > 0)
        # Mean gap of a Poisson process is 1/rate (loose bound, fixed rng).
        assert 0.2 / 100.0 < np.mean(np.diff(arrivals)) < 5.0 / 100.0

    def test_arrivals_validate_inputs(self):
        with pytest.raises(ValueError, match="num_arrivals"):
            make_poisson_arrivals(0)
        with pytest.raises(ValueError, match="rate_qps"):
            make_poisson_arrivals(5, rate_qps=0.0)

    def test_open_loop_workload_shape(self):
        workload = make_open_loop_workload("G1", num_seeds=3, num_arrivals=20, k=50, rng=5)
        assert workload.num_queries == 20
        assert len(workload.arrival_seconds) == 20
        # Hot-seed pool: only num_seeds distinct seeds, so repeats occur.
        assert len({query.seed for query in workload.queries}) <= 3
        assert all(query.k == 50 for query in workload.queries)

    def test_arrivals_rescale_with_rate(self):
        workload = make_open_loop_workload("G1", num_seeds=2, num_arrivals=5, rng=5)
        slow = workload.arrivals_at(10.0)
        fast = workload.arrivals_at(100.0)
        assert all(
            fast_at == pytest.approx(slow_at / 10.0)
            for slow_at, fast_at in zip(slow, fast)
        )
        with pytest.raises(ValueError, match="rate_qps"):
            workload.arrivals_at(0.0)

    def test_deterministic_for_fixed_rng(self):
        first = make_open_loop_workload("G1", num_seeds=3, num_arrivals=10, rng=11)
        second = make_open_loop_workload("G1", num_seeds=3, num_arrivals=10, rng=11)
        assert first.queries == second.queries
        assert first.arrival_seconds == second.arrival_seconds


class TestLatencyStudySchema:
    @pytest.fixture(scope="class")
    def study(self):
        return run_latency_study(
            num_seeds=2,
            num_arrivals=8,
            rates_qps=(200.0,),
            policies=(
                BatchPolicy(max_batch_size=1, max_wait_ms=0.0),
                BatchPolicy(max_batch_size=4, max_wait_ms=1.0),
            ),
        )

    def test_runs_cover_the_grid(self, study):
        assert [run.label for run in study.runs] == [
            "200qps-b1w0",
            "200qps-b4w1",
        ]

    def test_as_dict_schema(self, study):
        payload = study.as_dict()
        assert set(payload) == {
            "dataset",
            "num_seeds",
            "num_arrivals",
            "k",
            "max_pending",
            "timeout_ms",
            "runs",
        }
        for run in payload["runs"]:
            assert run["completed"] + run["shed"] + run["expired"] == run["offered"]
            assert 0.0 <= run["shed_rate"] <= 1.0
            assert run["p50_ms"] <= run["p95_ms"] <= run["p99_ms"]
            assert run["p99_ms"] <= run["max_ms"] + 1e-9
            assert run["wall_seconds"] > 0.0
            assert run["mean_batch_size"] >= 0.0
            assert run["dedup_hits"] >= 0
            assert 0.0 <= run["cache_hit_rate"] <= 1.0

    def test_json_round_trip(self, study):
        document = json.dumps(study.as_dict())
        assert json.loads(document)["runs"]

    def test_format_mentions_experiment(self, study):
        text = format_latency(study)
        assert "E11" in text
        assert "200qps-b1w0" in text

    def test_correctness_was_verified(self, study):
        # run_latency_study raises if any completed answer deviates from the
        # serial reference; with a feasible rate everything completes.
        assert any(run.completed == run.offered for run in study.runs)


class TestAsyncBenchScript:
    @pytest.fixture(scope="class")
    def bench(self):
        return load_bench_module("bench_async_serving")

    def test_study_json_schema(self, bench):
        study = bench.run_benchmark(
            num_seeds=2, num_arrivals=8, rates_qps=(200.0,)
        )
        payload = json.loads(bench.study_json(study))
        assert payload["runs"]
        for run in payload["runs"]:
            assert "p99_ms" in run and "shed_rate" in run

    def test_main_writes_json_file(self, bench, tmp_path):
        out = tmp_path / "async-serving.json"
        code = bench.main(
            [
                "--num-seeds",
                "2",
                "--num-arrivals",
                "8",
                "--rates",
                "200",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["num_seeds"] == 2
        assert payload["runs"]


class TestLatencyStudyCLI:
    def test_main_writes_json_file(self, tmp_path):
        from repro.experiments import latency_study

        out = tmp_path / "e11.json"
        code = latency_study.main(
            [
                "--num-seeds",
                "2",
                "--num-arrivals",
                "6",
                "--rates",
                "200",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["dataset"] == "G1"
        assert len(payload["runs"]) == 2
