"""Tests for the stage (Eq. 6) and linear (Eq. 7/8) decompositions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.diffusion import graph_diffusion, seed_vector
from repro.diffusion.transition import TransitionOperator
from repro.meloppr.linear import (
    ResidualComponent,
    linear_decomposed_diffusion,
    split_residual,
)
from repro.meloppr.stage import (
    StagePlan,
    multi_stage_diffusion,
    split_length,
    stage_weights,
    two_stage_diffusion,
)


class TestSplitLength:
    def test_even_split(self):
        assert split_length(6, 2) == (3, 3)

    def test_remainder_goes_to_earlier_stages(self):
        assert split_length(7, 2) == (4, 3)
        assert split_length(8, 3) == (3, 3, 2)

    def test_single_stage(self):
        assert split_length(5, 1) == (5,)

    def test_too_many_stages_rejected(self):
        with pytest.raises(ValueError):
            split_length(2, 3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            split_length(0, 1)
        with pytest.raises(ValueError):
            split_length(4, 0)


class TestStageWeights:
    def test_paper_split(self):
        assert stage_weights((3, 3), 0.85) == pytest.approx([1.0, 0.85**3])

    def test_three_stages(self):
        weights = stage_weights((2, 2, 2), 0.5)
        assert weights == pytest.approx([1.0, 0.25, 0.0625])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stage_weights((), 0.85)

    def test_zero_length_stage_rejected(self):
        with pytest.raises(ValueError):
            stage_weights((3, 0), 0.85)


class TestStagePlan:
    def test_create(self):
        plan = StagePlan.create((3, 3), 0.85)
        assert plan.total_length == 6
        assert plan.num_stages == 2

    def test_residual_correction_matches_eq6(self):
        plan = StagePlan.create((3, 3), 0.85)
        assert plan.residual_correction(0) == pytest.approx(0.85**3)

    def test_residual_correction_later_stage(self):
        plan = StagePlan.create((2, 2, 2), 0.85)
        assert plan.residual_correction(1) == pytest.approx(0.85**2 * 0.85**2)

    def test_residual_correction_out_of_range(self):
        plan = StagePlan.create((3, 3), 0.85)
        with pytest.raises(IndexError):
            plan.residual_correction(5)


class TestStageDecompositionIdentity:
    """Eq. 6: GD(L)(S0) == GD(l1)(S0) + a^l1 GD(l2)(W^l1 S0) - a^l1 W^l1 S0."""

    @pytest.mark.parametrize("l1,l2", [(1, 5), (2, 4), (3, 3), (4, 2), (5, 1)])
    def test_two_stage_identity_on_ba_graph(self, small_ba_graph, l1, l2):
        initial = seed_vector(small_ba_graph.num_nodes, 3)
        direct = graph_diffusion(small_ba_graph, initial, l1 + l2, 0.85).accumulated
        decomposed = two_stage_diffusion(small_ba_graph, initial, l1, l2, 0.85)
        np.testing.assert_allclose(decomposed, direct, atol=1e-10)

    def test_two_stage_identity_on_star(self, star_graph):
        initial = seed_vector(7, 0)
        direct = graph_diffusion(star_graph, initial, 4, 0.5).accumulated
        decomposed = two_stage_diffusion(star_graph, initial, 2, 2, 0.5)
        np.testing.assert_allclose(decomposed, direct, atol=1e-12)

    @pytest.mark.parametrize("lengths", [(2, 2, 2), (1, 2, 3), (3, 2, 1), (1, 1, 1, 3)])
    def test_multi_stage_identity(self, small_ba_graph, lengths):
        initial = seed_vector(small_ba_graph.num_nodes, 9)
        direct = graph_diffusion(
            small_ba_graph, initial, sum(lengths), 0.85
        ).accumulated
        decomposed = multi_stage_diffusion(small_ba_graph, initial, lengths, 0.85)
        np.testing.assert_allclose(decomposed, direct, atol=1e-10)

    def test_identity_with_non_seed_initial_vector(self, small_ba_graph, rng):
        initial = rng.random(small_ba_graph.num_nodes)
        direct = graph_diffusion(small_ba_graph, initial, 4, 0.7).accumulated
        decomposed = two_stage_diffusion(small_ba_graph, initial, 2, 2, 0.7)
        np.testing.assert_allclose(decomposed, direct, atol=1e-10)

    def test_identity_with_different_alpha(self, small_citation_graph):
        initial = seed_vector(small_citation_graph.num_nodes, 17)
        for alpha in (0.2, 0.5, 0.99):
            direct = graph_diffusion(small_citation_graph, initial, 6, alpha).accumulated
            decomposed = two_stage_diffusion(small_citation_graph, initial, 3, 3, alpha)
            np.testing.assert_allclose(decomposed, direct, atol=1e-10)


class TestSplitResidual:
    def test_ordering_by_descending_value(self):
        components = split_residual(np.array([1, 2, 3]), np.array([0.1, 0.5, 0.3]))
        assert [c.node for c in components] == [2, 3, 1]

    def test_tolerance_drops_small_entries(self):
        components = split_residual(np.array([1, 2]), np.array([1e-15, 0.5]), tolerance=1e-12)
        assert [c.node for c in components] == [2]

    def test_values_preserved(self):
        components = split_residual(np.array([4]), np.array([0.25]))
        assert components == [ResidualComponent(4, 0.25)]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            split_residual(np.array([1]), np.array([0.1, 0.2]))

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            split_residual(np.array([1]), np.array([0.1]), tolerance=-1.0)


class TestLinearDecompositionIdentity:
    """Eq. 7: GD(l2)(S^r) == sum_v GD(l2)(S^r_v)."""

    def test_identity_against_direct_diffusion(self, small_ba_graph):
        operator = TransitionOperator(small_ba_graph)
        initial = seed_vector(small_ba_graph.num_nodes, 2)
        stage_one = graph_diffusion(operator, initial, 3, 0.85)
        residual = stage_one.residual
        (nodes,) = np.nonzero(residual)
        direct = graph_diffusion(operator, residual, 3, 0.85).accumulated
        decomposed = linear_decomposed_diffusion(
            operator, nodes, residual[nodes], 3, 0.85
        )
        np.testing.assert_allclose(decomposed, direct, atol=1e-10)

    def test_identity_on_star_graph(self, star_graph):
        residual = np.array([0.0, 0.5, 0.5, 0.0, 0.0, 0.0, 0.0])
        (nodes,) = np.nonzero(residual)
        direct = graph_diffusion(star_graph, residual, 2, 0.6).accumulated
        decomposed = linear_decomposed_diffusion(star_graph, nodes, residual[nodes], 2, 0.6)
        np.testing.assert_allclose(decomposed, direct, atol=1e-12)

    def test_empty_residual_gives_zero(self, triangle_graph):
        result = linear_decomposed_diffusion(
            triangle_graph, np.array([]), np.array([]), 2, 0.85
        )
        assert result.sum() == 0.0

    def test_combined_eq8_identity(self, small_ba_graph):
        """Eq. 8: the full stage + linear decomposition equals GD(L)."""
        alpha, l1, l2 = 0.85, 3, 3
        operator = TransitionOperator(small_ba_graph)
        initial = seed_vector(small_ba_graph.num_nodes, 12)
        direct = graph_diffusion(operator, initial, l1 + l2, alpha).accumulated

        stage_one = graph_diffusion(operator, initial, l1, alpha)
        (nodes,) = np.nonzero(stage_one.residual)
        stage_two_sum = linear_decomposed_diffusion(
            operator, nodes, stage_one.residual[nodes], l2, alpha
        )
        reconstructed = (
            stage_one.accumulated
            - (alpha**l1) * stage_one.residual
            + (alpha**l1) * stage_two_sum
        )
        np.testing.assert_allclose(reconstructed, direct, atol=1e-10)
