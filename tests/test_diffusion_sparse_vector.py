"""Tests for repro.diffusion.sparse_vector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.sparse_vector import SparseScoreVector


class TestConstruction:
    def test_empty(self):
        vector = SparseScoreVector()
        assert len(vector) == 0
        assert vector.sum() == 0.0

    def test_from_dict(self):
        vector = SparseScoreVector({1: 0.5, 2: 0.25})
        assert vector.get(1) == 0.5

    def test_from_arrays(self):
        vector = SparseScoreVector.from_arrays(np.array([3, 5]), np.array([0.1, 0.2]))
        assert vector.get(5) == pytest.approx(0.2)

    def test_from_arrays_accumulates_duplicates(self):
        vector = SparseScoreVector.from_arrays(np.array([1, 1]), np.array([0.1, 0.2]))
        assert vector.get(1) == pytest.approx(0.3)

    def test_from_arrays_shape_mismatch(self):
        with pytest.raises(ValueError):
            SparseScoreVector.from_arrays(np.array([1, 2]), np.array([0.1]))

    def test_from_dense_with_tolerance(self):
        dense = np.array([0.0, 1e-9, 0.5])
        vector = SparseScoreVector.from_dense(dense, tolerance=1e-6)
        assert 1 not in vector
        assert 2 in vector

    def test_copy_is_independent(self):
        original = SparseScoreVector({1: 1.0})
        clone = original.copy()
        clone.add(1, 1.0)
        assert original.get(1) == 1.0


class TestArithmetic:
    def test_add_accumulates(self):
        vector = SparseScoreVector()
        vector.add(4, 0.5)
        vector.add(4, 0.25)
        assert vector.get(4) == pytest.approx(0.75)

    def test_add_vector_with_scale(self):
        a = SparseScoreVector({0: 1.0})
        b = SparseScoreVector({0: 1.0, 1: 2.0})
        a.add_vector(b, scale=0.5)
        assert a.get(0) == pytest.approx(1.5)
        assert a.get(1) == pytest.approx(1.0)

    def test_scale(self):
        vector = SparseScoreVector({1: 2.0, 2: 4.0})
        vector.scale(0.5)
        assert vector.get(2) == pytest.approx(2.0)

    def test_prune_removes_small_entries(self):
        vector = SparseScoreVector({1: 1e-15, 2: 0.5})
        vector.prune(1e-12)
        assert 1 not in vector
        assert 2 in vector

    def test_sum(self):
        assert SparseScoreVector({1: 0.25, 2: 0.75}).sum() == pytest.approx(1.0)


class TestTopK:
    def test_top_k_ordering(self):
        vector = SparseScoreVector({1: 0.2, 2: 0.5, 3: 0.3})
        assert vector.top_k_nodes(2) == [2, 3]

    def test_top_k_ties_broken_by_node_id(self):
        vector = SparseScoreVector({5: 0.5, 1: 0.5, 3: 0.5})
        assert vector.top_k_nodes(3) == [1, 3, 5]

    def test_top_k_larger_than_size(self):
        vector = SparseScoreVector({1: 0.1})
        assert len(vector.top_k(10)) == 1

    def test_top_k_zero_or_negative(self):
        vector = SparseScoreVector({1: 0.1})
        assert vector.top_k(0) == []
        assert vector.top_k(-2) == []

    def test_top_k_returns_scores(self):
        vector = SparseScoreVector({1: 0.25})
        assert vector.top_k(1) == [(1, 0.25)]


class TestConversions:
    def test_to_dense(self):
        vector = SparseScoreVector({0: 0.5, 3: 0.25})
        dense = vector.to_dense(5)
        assert dense[0] == 0.5
        assert dense[3] == 0.25
        assert dense.sum() == pytest.approx(0.75)

    def test_to_dense_too_small(self):
        vector = SparseScoreVector({7: 1.0})
        with pytest.raises(ValueError):
            vector.to_dense(3)

    def test_nodes_and_values_aligned(self):
        vector = SparseScoreVector({2: 0.2, 9: 0.9})
        mapping = dict(zip(vector.nodes().tolist(), vector.values().tolist()))
        assert mapping == {2: 0.2, 9: 0.9}

    def test_nbytes(self):
        assert SparseScoreVector({1: 0.1, 2: 0.2}).nbytes() == 32

    def test_iteration_and_contains(self):
        vector = SparseScoreVector({4: 1.0})
        assert list(iter(vector)) == [4]
        assert 4 in vector
        assert 5 not in vector

    def test_repr_mentions_entries(self):
        assert "num_entries=1" in repr(SparseScoreVector({1: 0.5}))
