"""Unit tests for the zero-dependency tracer (repro.serving.tracing).

Covers the pieces in isolation — traceparent parsing, the sampling
decision, span nesting and lifecycle, ring-buffer bounds, cross-process
adoption, the Perfetto export, the slow-query log, counters and resets —
plus the telemetry contract pins that ride along in this PR
(empty-histogram percentiles, stable ``LatencySnapshot.as_dict`` order).
The end-to-end serving-path integration lives in
``tests/test_tracing_serving.py``.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.serving.telemetry import LatencyHistogram, LatencySnapshot
from repro.serving.tracing import (
    Span,
    TraceContext,
    Tracer,
    format_traceparent,
    make_span_id,
    make_trace_id,
    monotonic_wall,
    parse_traceparent,
    validate_trace_events,
    worker_task_spans,
)


class TestTraceparent:
    def test_roundtrip(self):
        trace_id = make_trace_id()
        span_id = make_span_id()
        header = format_traceparent(trace_id, span_id, sampled=True)
        assert parse_traceparent(header) == (trace_id, span_id, True)

    def test_unsampled_flag(self):
        header = format_traceparent("ab" * 16, "cd" * 8, sampled=False)
        parsed = parse_traceparent(header)
        assert parsed == ("ab" * 16, "cd" * 8, False)

    def test_case_and_whitespace_tolerated(self):
        header = "  00-" + "AB" * 16 + "-" + "CD" * 8 + "-01  "
        parsed = parse_traceparent(header)
        assert parsed == ("ab" * 16, "cd" * 8, True)

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "not-a-header",
            "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",  # all-zero trace id
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span id
            "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # forbidden version
            "00-" + "ab" * 15 + "-" + "cd" * 8 + "-01",  # short trace id
            "00-" + "ab" * 16 + "-" + "cd" * 8 + "-1",  # short flags
            "00-" + "xy" * 16 + "-" + "cd" * 8 + "-01",  # non-hex
            None,
            123,
        ],
    )
    def test_malformed_headers_return_none(self, header):
        assert parse_traceparent(header) is None

    def test_ids_have_spec_shape(self):
        assert len(make_trace_id()) == 32
        assert len(make_span_id()) == 16
        int(make_trace_id(), 16)  # hex
        int(make_span_id(), 16)


class TestSampling:
    def test_rate_zero_never_samples(self):
        tracer = Tracer(sample_rate=0.0)
        assert all(tracer.start_trace() is None for _ in range(50))
        stats = tracer.stats()
        assert stats.started == 50
        assert stats.sampled == 0

    def test_rate_one_always_samples(self):
        tracer = Tracer(sample_rate=1.0)
        contexts = [tracer.start_trace() for _ in range(10)]
        assert all(ctx is not None for ctx in contexts)
        assert tracer.stats().sampled == 10

    def test_fractional_rate_follows_the_rng(self):
        # A seeded rng makes the sequence deterministic: the decision is
        # rng.random() < rate, checked against the same stream.
        rng = random.Random(1234)
        expected = [rng.random() < 0.3 for _ in range(200)]
        tracer = Tracer(sample_rate=0.3, rng=random.Random(1234))
        got = [tracer.start_trace() is not None for _ in range(200)]
        assert got == expected

    def test_traceparent_sampled_flag_forces_tracing(self):
        tracer = Tracer(sample_rate=0.0)
        header = format_traceparent(make_trace_id(), make_span_id(), sampled=True)
        ctx = tracer.start_trace(traceparent=header)
        assert ctx is not None
        assert ctx.trace_id == header.split("-")[1]
        assert ctx.root.parent_id == header.split("-")[2]

    def test_traceparent_unsampled_flag_defers_to_local_rate(self):
        tracer = Tracer(sample_rate=0.0)
        header = format_traceparent(make_trace_id(), make_span_id(), sampled=False)
        assert tracer.start_trace(traceparent=header) is None

    def test_malformed_traceparent_falls_back_to_fresh_trace(self):
        tracer = Tracer(sample_rate=1.0)
        ctx = tracer.start_trace(traceparent="garbage")
        assert ctx is not None
        assert len(ctx.trace_id) == 32
        assert ctx.root.parent_id is None

    def test_set_sample_rate_validates_and_applies(self):
        tracer = Tracer(sample_rate=0.0)
        tracer.set_sample_rate(1.0)
        assert tracer.sample_rate == 1.0
        assert tracer.start_trace() is not None
        with pytest.raises(ValueError, match="sample_rate"):
            tracer.set_sample_rate(1.5)
        with pytest.raises(ValueError, match="sample_rate"):
            tracer.set_sample_rate(-0.1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="sample_rate"):
            Tracer(sample_rate=2.0)
        with pytest.raises(ValueError, match="ring_size"):
            Tracer(ring_size=0)
        with pytest.raises(ValueError, match="slow_threshold_ms"):
            Tracer(slow_threshold_ms=-1.0)


class TestSpanLifecycle:
    def make_ctx(self):
        tracer = Tracer(sample_rate=1.0)
        ctx = tracer.start_trace("request", transport="test")
        assert ctx is not None
        return tracer, ctx

    def test_nested_scoped_spans_parent_correctly(self):
        _, ctx = self.make_ctx()
        with ctx.span("outer") as outer:
            with ctx.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert ctx.current_span_id() == outer.span_id
        assert outer.parent_id == ctx.root.span_id
        assert ctx.current_span_id() == ctx.root.span_id
        assert inner.end is not None and outer.end is not None
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_begin_without_push_keeps_siblings_flat(self):
        _, ctx = self.make_ctx()
        first = ctx.begin_span("a")
        second = ctx.begin_span("b")
        assert first.parent_id == ctx.root.span_id
        assert second.parent_id == ctx.root.span_id
        ctx.end_span(first, outcome="done")
        ctx.end_span(second)
        assert first.attributes["outcome"] == "done"

    def test_end_span_is_idempotent(self):
        _, ctx = self.make_ctx()
        span = ctx.begin_span("once")
        ctx.end_span(span)
        first_end = span.end
        ctx.end_span(span, ignored=True)
        assert span.end == first_end
        assert "ignored" not in span.attributes

    def test_exception_inside_scoped_span_marks_error(self):
        _, ctx = self.make_ctx()
        with pytest.raises(RuntimeError):
            with ctx.span("doomed"):
                raise RuntimeError("boom")
        doomed = next(s for s in ctx.spans if s.name == "doomed")
        assert doomed.end is not None
        assert doomed.attributes["status"] == "error"
        assert "boom" in doomed.attributes["error"]

    def test_finish_closes_open_spans_and_records(self):
        tracer, ctx = self.make_ctx()
        leaked = ctx.begin_span("leaked", push=True)
        ctx.finish(status="ok", latency_ms=1.25)
        assert leaked.end is not None
        assert leaked.attributes["auto_closed"] is True
        assert ctx.root.attributes["status"] == "ok"
        assert ctx.root.attributes["latency_ms"] == 1.25
        trees = tracer.traces()
        assert len(trees) == 1
        assert trees[0]["trace_id"] == ctx.trace_id
        assert trees[0]["status"] == "ok"

    def test_finish_is_idempotent(self):
        tracer, ctx = self.make_ctx()
        ctx.finish()
        ctx.finish()
        assert len(tracer.traces()) == 1
        assert tracer.stats().finished == 1

    def test_annotate_lands_on_the_root(self):
        _, ctx = self.make_ctx()
        ctx.annotate(seed=42)
        assert ctx.root.attributes["seed"] == 42

    def test_span_dict_shape(self):
        _, ctx = self.make_ctx()
        with ctx.span("op", k=5):
            pass
        ctx.finish()
        tree = ctx.as_dict()
        assert tree["root_span_id"] == ctx.root.span_id
        assert tree["duration_ms"] >= 0.0
        op = next(s for s in tree["spans"] if s["name"] == "op")
        assert op["attributes"] == {"k": 5}
        assert op["parent_id"] == tree["root_span_id"]
        assert {"span_id", "parent_id", "name", "start", "end",
                "duration_ms", "pid", "tid", "attributes"} <= set(op)

    def test_monotonic_wall_is_monotonic(self):
        readings = [monotonic_wall() for _ in range(100)]
        assert readings == sorted(readings)


class TestAdoption:
    def test_adopt_reparents_roots_and_keeps_child_links(self):
        tracer = Tracer(sample_rate=1.0)
        ctx = tracer.start_trace()
        now = monotonic_wall()
        raw = worker_task_spans(
            stage_index=1,
            center=7,
            shard_id=2,
            started=now,
            ended=now + 0.010,
            timing_seconds={"bfs": 0.004, "diffusion": 0.005},
            cache_hit=False,
        )
        stage = ctx.begin_span("engine.stage", push=True)
        assert ctx.adopt(raw) == 3
        ctx.end_span(stage)
        ctx.finish()

        by_name = {s.name: s for s in ctx.spans}
        task = by_name["worker.task"]
        assert task.parent_id == stage.span_id  # root re-parented here
        assert task.trace_id == ctx.trace_id
        assert task.attributes["shard_id"] == 2
        assert task.attributes["cache_hit"] is False
        # Children keep their intra-worker parent link.
        assert by_name["worker.extract"].parent_id == task.span_id
        assert by_name["worker.diffusion"].parent_id == task.span_id
        # Every parent_id in the finished tree resolves within the tree.
        ids = {s.span_id for s in ctx.spans}
        for span in ctx.spans:
            assert span.parent_id is None or span.parent_id in ids

    def test_worker_spans_omit_zero_duration_children(self):
        now = monotonic_wall()
        raw = worker_task_spans(0, 3, None, now, now + 0.001, {}, cache_hit=True)
        assert [s["name"] for s in raw] == ["worker.task"]
        assert "shard_id" not in raw[0]["attributes"]
        assert raw[0]["attributes"]["cache_hit"] is True


class TestRingAndExport:
    def finished_trace(self, tracer, name="request"):
        ctx = tracer.start_trace(name)
        with ctx.span("op"):
            pass
        ctx.finish()
        return ctx

    def test_ring_bounds_and_dropped_counter(self):
        tracer = Tracer(sample_rate=1.0, ring_size=3)
        for _ in range(5):
            self.finished_trace(tracer)
        assert len(tracer.traces()) == 3
        stats = tracer.stats()
        assert stats.finished == 5
        assert stats.dropped == 2

    def test_clear_drops_the_ring_not_the_counters(self):
        tracer = Tracer(sample_rate=1.0)
        self.finished_trace(tracer)
        tracer.clear()
        assert tracer.traces() == []
        assert tracer.stats().finished == 1

    def test_reset_stats_keeps_the_ring(self):
        tracer = Tracer(sample_rate=1.0)
        self.finished_trace(tracer)
        tracer.reset_stats()
        stats = tracer.stats()
        assert stats.started == stats.sampled == stats.finished == 0
        assert stats.spans == stats.slow_traces == stats.dropped == 0
        assert stats.sample_rate == 1.0  # config survives
        assert len(tracer.traces()) == 1

    def test_perfetto_export_validates_and_rebases(self):
        tracer = Tracer(sample_rate=1.0)
        self.finished_trace(tracer)
        self.finished_trace(tracer)
        doc = tracer.perfetto()
        count = validate_trace_events(doc)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert count == len(complete) + len(meta)
        assert len(complete) == 4  # 2 traces x (request + op)
        assert min(e["ts"] for e in complete) == 0.0  # rebased
        assert meta and meta[0]["args"]["name"] == "serving"
        # Round-trips through JSON (the HTTP handler serialises it).
        assert validate_trace_events(json.loads(json.dumps(doc))) == count

    def test_perfetto_of_empty_ring_is_valid(self):
        tracer = Tracer(sample_rate=1.0)
        assert validate_trace_events(tracer.perfetto()) == 0

    @pytest.mark.parametrize(
        "doc, fragment",
        [
            ([], "JSON object"),
            ({}, "traceEvents"),
            ({"traceEvents": [{"ph": "X", "pid": 1, "tid": 1}]}, "name"),
            (
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": -1, "dur": 0}
                ]},
                ">= 0",
            ),
            (
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 1, "tid": 1,
                     "ts": 0, "dur": 0, "args": 3}
                ]},
                "args",
            ),
        ],
    )
    def test_validate_trace_events_rejects_malformed(self, doc, fragment):
        with pytest.raises(ValueError, match=fragment):
            validate_trace_events(doc)


class TestSlowQueryLog:
    def test_over_threshold_traces_append_jsonl(self, tmp_path):
        log = tmp_path / "slow.jsonl"
        tracer = Tracer(
            sample_rate=1.0, slow_threshold_ms=0.0, slow_log_path=str(log)
        )
        for _ in range(2):
            ctx = tracer.start_trace()
            with ctx.span("op"):
                pass
            ctx.finish()
        lines = log.read_text().strip().splitlines()
        assert len(lines) == 2
        tree = json.loads(lines[0])
        assert set(tree) == {
            "trace_id", "root_span_id", "name", "status", "start",
            "duration_ms", "spans",
        }
        assert tracer.stats().slow_traces == 2

    def test_fast_traces_stay_out_of_the_log(self, tmp_path):
        log = tmp_path / "slow.jsonl"
        tracer = Tracer(
            sample_rate=1.0, slow_threshold_ms=60_000.0, slow_log_path=str(log)
        )
        ctx = tracer.start_trace()
        ctx.finish()
        assert not log.exists()
        assert tracer.stats().slow_traces == 0


class TestTelemetryContractPins:
    """Satellite regression pins: documented telemetry edge-case behavior."""

    def test_empty_histogram_percentile_is_exactly_zero(self):
        histogram = LatencyHistogram()
        for quantile in (0.0, 0.5, 0.95, 0.99, 1.0):
            value = histogram.percentile(quantile)
            assert value == 0.0
            assert isinstance(value, float)

    def test_reset_histogram_percentile_is_exactly_zero(self):
        histogram = LatencyHistogram()
        histogram.record(0.25)
        histogram.reset()
        assert histogram.percentile(0.99) == 0.0

    def test_empty_histogram_out_of_range_quantile_still_raises(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError, match="quantile"):
            histogram.percentile(1.5)

    def test_empty_snapshot_is_all_zeros(self):
        snap = LatencyHistogram().snapshot()
        assert snap == LatencySnapshot(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_snapshot_as_dict_key_order_is_stable(self):
        expected = [
            "count", "mean_seconds", "min_seconds", "max_seconds",
            "p50_seconds", "p95_seconds", "p99_seconds",
        ]
        assert list(LatencyHistogram().snapshot().as_dict()) == expected
        populated = LatencyHistogram()
        for value in (0.001, 0.5, 0.02):
            populated.record(value)
        assert list(populated.snapshot().as_dict()) == expected
