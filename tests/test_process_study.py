"""Smoke and schema tests for the E12 process study and its bench/gate tools.

The process benchmark promises the same JSON contract as the other serving
benchmarks (a ``runs`` list with ``label``/``throughput_qps``), which is what
lets ``benchmarks/check_regression.py`` gate all of them uniformly — so the
study schema and the regression checker are tested side by side here.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.experiments.process_study import format_process, run_process_study

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def load_bench_module(name):
    """Import a benchmark script by file path (benchmarks/ is not a package)."""
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestProcessStudySchema:
    @pytest.fixture(scope="class")
    def study(self):
        return run_process_study(num_seeds=2, repeat_factor=2, worker_counts=(2,))

    def test_runs_cover_the_sweep(self, study):
        labels = [run.label for run in study.runs]
        assert labels == ["serial", "thread:2", "process:2"]
        assert study.baseline.label == "serial"
        assert study.by_label()["process:2"].backend == "process-pool"

    def test_speedups_are_relative_to_serial_and_threads(self, study):
        runs = study.by_label()
        assert runs["serial"].speedup_vs_serial == 1.0
        assert runs["serial"].speedup_vs_threads is None
        assert runs["thread:2"].speedup_vs_threads is None
        process = runs["process:2"]
        assert process.speedup_vs_serial > 0.0
        assert process.speedup_vs_threads is not None
        assert process.speedup_vs_threads == pytest.approx(
            process.throughput_qps / runs["thread:2"].throughput_qps
        )

    def test_as_dict_schema(self, study):
        payload = study.as_dict()
        assert set(payload) == {
            "dataset",
            "num_seeds",
            "repeat_factor",
            "k",
            "worker_counts",
            "runs",
        }
        for run in payload["runs"]:
            assert set(run) == {
                "label",
                "backend",
                "workers",
                "num_queries",
                "wall_seconds",
                "throughput_qps",
                "mean_latency_seconds",
                "cache_hit_rate",
                "speedup_vs_serial",
                "speedup_vs_threads",
            }
            assert run["throughput_qps"] > 0.0
        document = json.dumps(payload)
        assert '"throughput_qps"' in document

    def test_format_renders_every_run(self, study):
        table = format_process(study)
        assert "E12" in table
        for run in study.runs:
            assert run.label in table


class TestProcessBenchScript:
    def test_bench_json_contract(self):
        bench = load_bench_module("bench_process_serving")
        study = bench.run_benchmark(num_seeds=2, repeat_factor=2, worker_counts=(2,))
        payload = json.loads(bench.study_json(study))
        assert [run["label"] for run in payload["runs"]] == [
            "serial",
            "thread:2",
            "process:2",
        ]


class TestCheckRegression:
    @pytest.fixture(scope="class")
    def checker(self):
        return load_bench_module("check_regression")

    @pytest.fixture()
    def report(self):
        return {
            "runs": [
                {"label": "serial", "throughput_qps": 100.0},
                {"label": "process:2", "throughput_qps": 300.0},
            ]
        }

    def test_extract_metrics(self, checker, report):
        assert checker.extract_metrics(report) == {
            "serial": 100.0,
            "process:2": 300.0,
        }
        with pytest.raises(ValueError, match="runs"):
            checker.extract_metrics({})
        with pytest.raises(ValueError, match="throughput_qps"):
            checker.extract_metrics({"runs": [{"label": "x"}]})

    def test_min_of_repeats_takes_best(self, checker, report):
        noisy = {
            "runs": [
                {"label": "serial", "throughput_qps": 40.0},  # noisy dip
                {"label": "process:2", "throughput_qps": 310.0},
            ]
        }
        best = checker.best_metrics([noisy, report])
        assert best == {"serial": 100.0, "process:2": 310.0}

    def test_within_tolerance_passes(self, checker):
        checks = checker.check_metrics(
            {"serial": 100.0}, {"serial": 80.0}, tolerance=0.30
        )
        assert all(check.passed for check in checks)

    def test_regression_beyond_tolerance_fails(self, checker):
        checks = checker.check_metrics(
            {"serial": 100.0}, {"serial": 50.0}, tolerance=0.30
        )
        assert not checks[0].passed
        assert checks[0].ratio == pytest.approx(0.5)

    def test_missing_configuration_fails(self, checker):
        checks = checker.check_metrics({"serial": 100.0}, {}, tolerance=0.30)
        assert not checks[0].passed
        assert checks[0].candidate_qps is None
        # A newly added configuration (candidate-only) is not gated yet.
        checks = checker.check_metrics(
            {"serial": 100.0}, {"serial": 100.0, "new": 5.0}
        )
        assert len(checks) == 1

    def test_cli_gate_and_synthetic_slowdown(self, checker, report, tmp_path, capsys):
        run_path = tmp_path / "run.json"
        run_path.write_text(json.dumps(report))
        baseline_path = tmp_path / "baseline.json"

        # 1. Write the baseline from a measured report.
        assert (
            checker.main(
                ["--baseline", str(baseline_path), "--update", str(run_path)]
            )
            == 0
        )
        baseline = json.loads(baseline_path.read_text())
        assert baseline["metrics"] == {"serial": 100.0, "process:2": 300.0}

        # 2. The gate passes on the same numbers.
        assert checker.main(["--baseline", str(baseline_path), str(run_path)]) == 0
        assert "all 2 configurations" in capsys.readouterr().out

        # 3. A synthetic 2x slowdown trips the gate (exit code 1).
        slow = {
            "runs": [
                {"label": run["label"], "throughput_qps": run["throughput_qps"] / 2}
                for run in report["runs"]
            ]
        }
        slow_path = tmp_path / "slow.json"
        slow_path.write_text(json.dumps(slow))
        assert checker.main(["--baseline", str(baseline_path), str(slow_path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "regressed" in out

    def test_committed_baselines_match_gated_benchmarks(self, checker):
        # Every gated benchmark has a committed baseline with plausible content.
        for name in ("serving", "sharded", "async", "process", "result_cache", "kernels"):
            path = BENCH_DIR / "baselines" / f"{name}.json"
            document = json.loads(path.read_text())
            assert document["metrics"], f"{name} baseline has no metrics"
            for value in document["metrics"].values():
                assert value > 0.0

    def test_tolerance_validation(self, checker):
        with pytest.raises(ValueError, match="tolerance"):
            checker.check_metrics({"a": 1.0}, {"a": 1.0}, tolerance=1.5)
