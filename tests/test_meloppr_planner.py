"""Tests for the planner/executor split and degenerate query lengths."""

from __future__ import annotations

import pytest

from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.planner import (
    MeLoPPRPlan,
    StageTask,
    _resplit,
    execute_plan,
    execute_stage_task,
)
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.ppr.local_ppr import LocalPPRSolver
from repro.ppr.metrics import result_precision


@pytest.fixture()
def config():
    return MeLoPPRConfig.paper_default()


class TestPlannerProtocol:
    def test_stage_one_tasks(self, small_ba_graph, config):
        plan = MeLoPPRPlan(small_ba_graph, config, PPRQuery(seed=7, k=20))
        assert not plan.done
        tasks = plan.pending_tasks
        assert len(tasks) == 1
        task = tasks[0]
        assert task == StageTask(stage_index=0, center=7, length=3, weight=1.0, alpha=0.85)

    def test_manual_drive_matches_solve(self, small_ba_graph, config):
        solver = MeLoPPRSolver(small_ba_graph, config)
        query = PPRQuery(seed=7, k=20)
        expected = solver.solve(query)

        plan = solver.plan(query)
        stages = 0
        while not plan.done:
            outcomes = [
                execute_stage_task(plan.graph, task, timing=plan.timing)
                for task in plan.pending_tasks
            ]
            plan.complete_stage(outcomes)
            stages += 1
        result = plan.finish()
        assert stages == 2
        assert result.top_k() == expected.top_k()
        assert result.metadata["num_tasks"] == expected.metadata["num_tasks"]
        assert result.metadata["tasks"] == expected.metadata["tasks"]

    def test_outcome_count_mismatch_raises(self, small_ba_graph, config):
        plan = MeLoPPRPlan(small_ba_graph, config, PPRQuery(seed=7, k=20))
        with pytest.raises(ValueError):
            plan.complete_stage([])
        plan.close()

    def test_finish_before_done_raises(self, small_ba_graph, config):
        plan = MeLoPPRPlan(small_ba_graph, config, PPRQuery(seed=7, k=20))
        with pytest.raises(RuntimeError):
            plan.finish()
        plan.close()

    def test_complete_after_done_raises(self, small_ba_graph, config):
        solver = MeLoPPRSolver(small_ba_graph, config)
        plan = solver.plan(PPRQuery(seed=7, k=20))
        execute_plan(plan)
        with pytest.raises(RuntimeError):
            plan.complete_stage([])


class TestMemoryTrackerLifecycle:
    def test_inspecting_a_plan_is_free(self, small_ba_graph, config):
        import tracemalloc

        from repro.memory.tracker import MemoryTracker

        assert not tracemalloc.is_tracing()
        plan = MeLoPPRPlan(small_ba_graph, config, PPRQuery(seed=7, k=20))
        # Building and inspecting tasks must not touch the global trace or
        # hold the tracker serialisation lock.
        assert plan.pending_tasks
        assert not tracemalloc.is_tracing()
        assert MemoryTracker._global_lock.acquire(blocking=False)
        MemoryTracker._global_lock.release()
        plan.close()

    def test_executed_plan_releases_tracing(self, small_ba_graph, config):
        import tracemalloc

        solver = MeLoPPRSolver(small_ba_graph, config)
        assert config.track_memory
        result = solver.solve(PPRQuery(seed=7, k=20))
        assert result.peak_memory_bytes > 0
        assert not tracemalloc.is_tracing()

    def test_track_memory_override(self, small_ba_graph, config):
        assert config.track_memory
        solver = MeLoPPRSolver(small_ba_graph, config)
        plan = solver.plan(PPRQuery(seed=7, k=20), track_memory=False)
        result = execute_plan(plan)
        # With tracking off, the peak falls back to the modelled bytes.
        assert result.peak_memory_bytes == result.metadata["modelled_bytes"]


class TestResplit:
    def test_zero_length(self):
        assert _resplit(0, (3, 3)) == (0,)
        assert _resplit(0, (2, 2, 2)) == (0,)

    def test_shorter_than_stages(self):
        assert _resplit(1, (3, 3)) == (1,)
        assert _resplit(2, (2, 2, 2)) == (1, 1)

    def test_proportional(self):
        assert _resplit(8, (3, 3)) == (4, 4)
        assert _resplit(7, (3, 3)) == (4, 3)


class TestDegenerateQueryLengths:
    """Regression: length-0 and length-1 queries (satellite of PR 1)."""

    def test_length_zero_returns_seed(self, small_ba_graph, config):
        result = MeLoPPRSolver(small_ba_graph, config).solve(
            PPRQuery(seed=5, k=10, length=0)
        )
        assert result.metadata["stage_lengths"] == (0,)
        assert result.metadata["num_tasks"] == 1
        assert result.top_k() == [(5, 1.0)]

    def test_length_one_matches_baseline(self, small_ba_graph, config):
        # k below the depth-1 ego size so top-k is fully determined.
        query = PPRQuery(seed=5, k=10, length=1)
        result = MeLoPPRSolver(small_ba_graph, config).solve(query)
        baseline = LocalPPRSolver(small_ba_graph, track_memory=False).solve(query)
        assert result.metadata["stage_lengths"] == (1,)
        assert result_precision(result, baseline) == pytest.approx(1.0)
        for node, score in baseline.scores.items():
            assert result.scores.get(node) == pytest.approx(score, abs=1e-12)

    def test_length_zero_through_engine(self, small_ba_graph, config):
        results = MeLoPPRSolver(small_ba_graph, config).solve_many(
            [PPRQuery(seed=seed, k=5, length=0) for seed in (1, 2, 3)]
        )
        assert [result.top_k() for result in results] == [
            [(1, 1.0)],
            [(2, 1.0)],
            [(3, 1.0)],
        ]


class TestScoreTableCapacity:
    """Regression: capacity lives on the config, not at call sites."""

    def test_capacity_formula(self):
        config = MeLoPPRConfig.paper_default()
        assert config.score_table_capacity(200) == 2000
        assert config.score_table_capacity(1) == 10

    def test_unbounded(self):
        config = MeLoPPRConfig(score_table_factor=None)
        assert config.score_table_capacity(200) is None

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MeLoPPRConfig.paper_default().score_table_capacity(0)

    def test_solver_uses_config_capacity(self, small_ba_graph):
        config = MeLoPPRConfig.paper_default()
        result = MeLoPPRSolver(small_ba_graph, config).solve(PPRQuery(seed=7, k=3))
        assert result.metadata["score_table_entries"] <= config.score_table_capacity(3)
