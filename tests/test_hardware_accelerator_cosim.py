"""Tests for the FPGA accelerator model and the CPU+FPGA co-simulation."""

from __future__ import annotations

import pytest

from repro.hardware.accelerator import FPGAAccelerator
from repro.hardware.cosim import MeLoPPRFPGASolver, tasks_from_records
from repro.hardware.pe import DiffusionTask
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver, StageTaskRecord
from repro.ppr.base import PPRQuery
from repro.ppr.local_ppr import LocalPPRSolver
from repro.ppr.metrics import result_precision


def make_tasks(count=8, stage_one_nodes=400):
    tasks = [
        DiffusionTask(
            task_id=0,
            stage_index=0,
            subgraph_nodes=stage_one_nodes,
            subgraph_edges=3 * stage_one_nodes,
            propagations=9 * stage_one_nodes,
            length=3,
            bfs_edges_scanned=3 * stage_one_nodes,
        )
    ]
    for index in range(1, count):
        tasks.append(
            DiffusionTask(
                task_id=index,
                stage_index=1,
                subgraph_nodes=120,
                subgraph_edges=360,
                propagations=1000,
                length=3,
                bfs_edges_scanned=360,
            )
        )
    return tasks


class TestFPGAAccelerator:
    def test_latency_decreases_with_parallelism(self):
        tasks = make_tasks(count=20)
        latencies = []
        for parallelism in (1, 2, 4, 8, 16):
            report = FPGAAccelerator(parallelism=parallelism).execute(tasks)
            latencies.append(report.diffusion_seconds + report.scheduling_seconds)
        assert latencies == sorted(latencies, reverse=True)
        assert latencies[0] / latencies[-1] > 4.0

    def test_breakdown_sums_to_makespan(self):
        report = FPGAAccelerator(parallelism=4).execute(make_tasks())
        assert report.makespan_seconds == pytest.approx(
            report.diffusion_seconds
            + report.scheduling_seconds
            + report.data_movement_seconds
        )

    def test_scheduling_zero_at_p1(self):
        report = FPGAAccelerator(parallelism=1).execute(make_tasks())
        assert report.scheduling_seconds == 0.0

    def test_scheduling_fraction_within_paper_bounds(self):
        tasks = make_tasks(count=32)
        for parallelism, bound in ((2, 0.25), (4, 0.45), (16, 0.45)):
            report = FPGAAccelerator(parallelism=parallelism).execute(tasks)
            compute = report.diffusion_seconds + report.scheduling_seconds
            assert report.scheduling_seconds / compute <= bound

    def test_peak_bram_is_largest_task(self):
        tasks = make_tasks()
        report = FPGAAccelerator(parallelism=2).execute(tasks)
        assert report.peak_pe_bram_bytes == max(task.bram_bytes for task in tasks)

    def test_data_movement_independent_of_parallelism(self):
        tasks = make_tasks()
        a = FPGAAccelerator(parallelism=1).execute(tasks)
        b = FPGAAccelerator(parallelism=16).execute(tasks)
        assert a.data_movement_seconds == pytest.approx(b.data_movement_seconds)

    def test_empty_task_list(self):
        report = FPGAAccelerator(parallelism=4).execute([])
        assert report.diffusion_seconds == 0.0
        assert report.peak_pe_bram_bytes == 0

    def test_resources_attached(self):
        report = FPGAAccelerator(parallelism=8).execute(make_tasks())
        assert report.resources.parallelism == 8

    def test_fits_on_device(self):
        accelerator = FPGAAccelerator(parallelism=4)
        assert accelerator.fits_on_device(make_tasks())

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            FPGAAccelerator(parallelism=0)


class TestTasksFromRecords:
    def test_conversion_preserves_fields(self):
        records = [
            StageTaskRecord(
                stage_index=0,
                center_node=5,
                weight=1.0,
                subgraph_nodes=50,
                subgraph_edges=80,
                bfs_edges_scanned=120,
                propagations=400,
            )
        ]
        tasks = tasks_from_records(records, (3, 3))
        assert tasks[0].subgraph_nodes == 50
        assert tasks[0].length == 3
        assert tasks[0].stage_index == 0

    def test_stage_length_lookup_clamped(self):
        records = [
            StageTaskRecord(
                stage_index=5,
                center_node=1,
                weight=0.1,
                subgraph_nodes=10,
                subgraph_edges=10,
                bfs_edges_scanned=10,
                propagations=10,
            )
        ]
        tasks = tasks_from_records(records, (3, 3))
        assert tasks[0].length == 3


class TestMeLoPPRFPGASolver:
    def test_scores_identical_to_cpu_solver(self, small_ba_graph):
        config = MeLoPPRConfig.paper_default(0.05)
        config = MeLoPPRConfig(
            stage_lengths=config.stage_lengths,
            selector=config.selector,
            score_table_factor=config.score_table_factor,
            track_memory=False,
        )
        query = PPRQuery(seed=6, k=30, length=6)
        cpu = MeLoPPRSolver(small_ba_graph, config).solve(query)
        fpga = MeLoPPRFPGASolver(small_ba_graph, config, parallelism=4).solve(query)
        assert fpga.top_k_nodes() == cpu.top_k_nodes()

    def test_timing_buckets(self, small_ba_graph):
        solver = MeLoPPRFPGASolver(small_ba_graph, parallelism=4)
        result = solver.solve_seed(seed=6, k=20)
        assert {
            "cpu_bfs",
            "fpga_diffusion",
            "fpga_scheduling",
            "fpga_data_movement",
        } <= set(result.timing.seconds)

    def test_cosim_report_attached(self, small_ba_graph):
        result = MeLoPPRFPGASolver(small_ba_graph, parallelism=2).solve_seed(seed=6, k=20)
        report = result.metadata["cosim"]
        assert report.total_seconds == pytest.approx(
            report.cpu_seconds + report.fpga_report.fpga_seconds
        )
        assert 0.0 <= report.bfs_fraction <= 1.0

    def test_modelled_cpu_time_mode(self, small_ba_graph):
        solver = MeLoPPRFPGASolver(
            small_ba_graph, parallelism=2, use_measured_cpu_time=False
        )
        result = solver.solve_seed(seed=6, k=20)
        assert result.metadata["cosim"].cpu_seconds > 0

    def test_peak_memory_is_bram_bytes(self, small_ba_graph):
        result = MeLoPPRFPGASolver(small_ba_graph, parallelism=2).solve_seed(seed=6, k=20)
        assert result.peak_memory_bytes == result.metadata["fpga_peak_pe_bram_bytes"]

    def test_fpga_memory_much_smaller_than_cpu_baseline(self, citeseer_standin):
        """The Table II headline: FPGA BRAM bytes << baseline CPU bytes."""
        query = PPRQuery(seed=50, k=200, length=6)
        baseline = LocalPPRSolver(citeseer_standin).solve(query)
        fpga = MeLoPPRFPGASolver(citeseer_standin, parallelism=16).solve(query)
        assert fpga.peak_memory_bytes * 5 < baseline.peak_memory_bytes

    def test_precision_reasonable_at_default_config(self, citeseer_standin):
        query = PPRQuery(seed=50, k=100, length=6)
        exact = LocalPPRSolver(citeseer_standin, track_memory=False).solve(query)
        fpga = MeLoPPRFPGASolver(citeseer_standin, parallelism=16).solve(query)
        assert result_precision(fpga, exact) > 0.3
