"""Dynamic graphs: DeltaGraph overlays, reach bounds, and surgical updates.

Covers the streaming-update substrate end to end:

* overlay semantics (insert/delete/cancel, merged neighbour reads, exact
  edge counts) and validation of wire-form edge-op batches;
* incremental region fingerprints (memoised per block, invalidated only for
  touched blocks, path-independent);
* ``compact()`` bit-identity against from-scratch rebuilds — including a
  hypothesis-driven random update-stream suite;
* the conservative hop-distance bound that justifies surgical cache
  invalidation;
* ``QueryEngine.apply_update`` differentials across serial, thread-pool,
  sharded and process-pool serving (answers must match a fresh solver on
  the rebuilt graph at every step), the writer barrier under concurrent
  batches, and the fingerprint-keyed ``structure_for`` sharing that makes
  buffer-reusing compacted graphs safe.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.diffusion.kernels import structure_for
from repro.graph.csr import CSRGraph
from repro.graph.delta import (
    DeltaGraph,
    min_hop_distances,
    normalize_edge_ops,
    update_distance_bound,
)
from repro.graph.generators import barabasi_albert_graph
from repro.graph.partition import partition_graph, patch_partition
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.selection import RatioSelector
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving.backends import ProcessPoolBackend, ThreadPoolBackend
from repro.serving.cache import SubgraphCache
from repro.serving.engine import QueryEngine
from repro.serving.result_cache import ScoreTableCache
from repro.serving.sharding import ShardRouter


def edge_set(graph) -> set:
    """Canonical ``(u < v)`` edge pairs of a CSRGraph or DeltaGraph."""
    edges = set()
    for u in range(graph.num_nodes):
        for v in graph.neighbors(u):
            if u < int(v):
                edges.add((u, int(v)))
    return edges


def path_graph(num_nodes: int) -> CSRGraph:
    return CSRGraph.from_edges(
        num_nodes, [(i, i + 1) for i in range(num_nodes - 1)], name="path"
    )


@pytest.fixture
def base() -> CSRGraph:
    return barabasi_albert_graph(60, 2, rng=0)


# ----------------------------------------------------------------------
# normalize_edge_ops
# ----------------------------------------------------------------------
class TestNormalizeEdgeOps:
    def test_tuples_and_dicts_canonicalise(self):
        ops = normalize_edge_ops(
            [("insert", 5, 3), {"op": "delete", "u": 1, "v": 7}], 10
        )
        assert ops == [("insert", 3, 5), ("delete", 1, 7)]

    def test_numpy_endpoints_accepted(self):
        ops = normalize_edge_ops([("insert", np.int64(2), np.int32(4))], 10)
        assert ops == [("insert", 2, 4)]

    @pytest.mark.parametrize(
        "bad",
        [
            [("grow", 0, 1)],
            [("insert", 0, 0)],
            [("insert", -1, 2)],
            [("insert", 0, 99)],
            [("insert", True, 2)],
            [("insert", 0.5, 2)],
            [("insert", 0)],
            [{"op": "insert", "u": 0}],
            [],
            "insert",
            {"op": "insert", "u": 0, "v": 1},
        ],
    )
    def test_invalid_batches_raise(self, bad):
        with pytest.raises(ValueError):
            normalize_edge_ops(bad, 10)


# ----------------------------------------------------------------------
# DeltaGraph overlay semantics
# ----------------------------------------------------------------------
class TestDeltaGraphOverlay:
    def test_insert_delete_and_counts(self, base):
        delta = DeltaGraph(base)
        reference = edge_set(base)
        new_edge = next(
            (u, v)
            for u in range(base.num_nodes)
            for v in range(u + 1, base.num_nodes)
            if (u, v) not in reference
        )
        old_edge = min(reference)

        delta.insert_edge(*new_edge)
        delta.delete_edge(*old_edge)
        assert delta.num_edges == base.num_edges
        assert delta.has_edge(*new_edge) and not delta.has_edge(*old_edge)
        assert delta.delta_edges == 2
        expected = (reference | {new_edge}) - {old_edge}
        assert edge_set(delta) == expected
        # Base graph untouched.
        assert edge_set(base) == reference

    def test_degree_matches_neighbors(self, base):
        delta = DeltaGraph(base)
        delta.delete_edge(0, int(base.neighbors(0)[0]))
        for node in range(base.num_nodes):
            assert delta.degree(node) == len(delta.neighbors(node))

    def test_untouched_row_is_base_view(self, base):
        delta = DeltaGraph(base)
        delta.delete_edge(0, int(base.neighbors(0)[0]))
        untouched = next(
            node
            for node in range(base.num_nodes)
            if node not in set(delta.touched_nodes().tolist())
        )
        assert delta.neighbors(untouched) is not None
        assert np.shares_memory(delta.neighbors(untouched), base.indices)

    def test_duplicate_insert_and_missing_delete_raise(self, base):
        delta = DeltaGraph(base)
        u, v = min(edge_set(base))
        with pytest.raises(ValueError, match="already exists"):
            delta.insert_edge(u, v)
        delta.delete_edge(u, v)
        with pytest.raises(ValueError, match="does not exist"):
            delta.delete_edge(u, v)
        with pytest.raises(ValueError, match="self-loop"):
            delta.insert_edge(3, 3)

    def test_cancelling_ops_restore_topology(self, base):
        delta = DeltaGraph(base)
        u, v = min(edge_set(base))
        delta.delete_edge(u, v)
        delta.insert_edge(u, v)  # cancels the delete log entry
        assert delta.delta_edges == 0
        assert delta.num_edges == base.num_edges
        assert delta.compact().fingerprint() == base.fingerprint()
        # Touched set stays conservative: the endpoints are still reported.
        assert {u, v} <= set(delta.touched_nodes().tolist())

    def test_apply_is_sequential(self, base):
        delta = DeltaGraph(base)
        u, v = min(edge_set(base))
        delta.apply([("delete", u, v), ("insert", u, v), ("delete", u, v)])
        assert not delta.has_edge(u, v)


# ----------------------------------------------------------------------
# Region fingerprints
# ----------------------------------------------------------------------
class TestRegionFingerprints:
    def test_touch_invalidates_only_the_touched_block(self, base):
        delta = DeltaGraph(base, region_size=16)
        before = [
            delta.region_fingerprint(block) for block in range(delta.num_regions)
        ]
        assert delta.num_regions == -(-base.num_nodes // 16)
        # An edge inside block 0 must leave every other block's digest alone.
        row0 = base.neighbors(0)
        candidates = [v for v in range(1, 16) if v not in set(row0.tolist())]
        delta.insert_edge(0, candidates[0])
        after = [
            delta.region_fingerprint(block) for block in range(delta.num_regions)
        ]
        assert after[0] != before[0]
        assert after[1:] == before[1:]

    def test_fingerprint_is_path_independent(self, base):
        u, v = min(edge_set(base))
        first = DeltaGraph(base)
        first.delete_edge(u, v)
        second = DeltaGraph(base)
        second.delete_edge(u, v)
        assert first.fingerprint() == second.fingerprint()
        # ...and changes when the topology actually changes.
        assert first.fingerprint() != DeltaGraph(base).fingerprint()

    def test_region_bounds_checked(self, base):
        delta = DeltaGraph(base)
        with pytest.raises(ValueError):
            delta.region_fingerprint(delta.num_regions)
        with pytest.raises(ValueError):
            DeltaGraph(base, region_size=0)


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
class TestCompact:
    def test_empty_overlay_reuses_buffers_as_new_object(self, base):
        compacted = DeltaGraph(base).compact()
        assert compacted is not base
        assert compacted.fingerprint() == base.fingerprint()
        assert np.shares_memory(compacted.indptr, base.indptr)
        assert np.shares_memory(compacted.indices, base.indices)

    def test_compact_matches_from_scratch_rebuild(self, base):
        delta = DeltaGraph(base)
        reference = edge_set(base)
        removed = sorted(reference)[:3]
        for u, v in removed:
            delta.delete_edge(u, v)
            reference.discard((u, v))
        added = [(0, 59), (5, 58)]
        for u, v in added:
            if (u, v) not in reference and not base.has_edge(u, v):
                delta.insert_edge(u, v)
                reference.add((u, v))
        compacted = delta.compact()
        rebuilt = CSRGraph.from_edges(base.num_nodes, sorted(reference))
        assert np.array_equal(compacted.indptr, rebuilt.indptr)
        assert np.array_equal(compacted.indices, rebuilt.indices)
        assert compacted.fingerprint() == rebuilt.fingerprint()
        assert compacted.name == base.name

    def test_compact_can_isolate_a_node(self):
        graph = path_graph(4)
        delta = DeltaGraph(graph)
        delta.delete_edge(0, 1)
        compacted = delta.compact()
        assert compacted.degree(0) == 0
        assert compacted.num_edges == 2


# ----------------------------------------------------------------------
# Hypothesis: random update streams
# ----------------------------------------------------------------------
@st.composite
def update_streams(draw):
    """A small random base graph plus a random valid op stream over it."""
    num_nodes = draw(st.integers(min_value=4, max_value=24))
    backbone = [
        (node, draw(st.integers(min_value=0, max_value=node - 1)))
        for node in range(1, num_nodes)
    ]
    graph = CSRGraph.from_edges(num_nodes, backbone, name="hyp")
    current = edge_set(graph)
    num_ops = draw(st.integers(min_value=1, max_value=30))
    ops = []
    for _ in range(num_ops):
        existing = sorted(current)
        missing = [
            (u, v)
            for u in range(num_nodes)
            for v in range(u + 1, num_nodes)
            if (u, v) not in current
        ]
        delete = draw(st.booleans())
        if delete and existing:
            u, v = existing[draw(st.integers(0, len(existing) - 1))]
            ops.append(("delete", u, v))
            current.discard((u, v))
        elif missing:
            u, v = missing[draw(st.integers(0, len(missing) - 1))]
            ops.append(("insert", u, v))
            current.add((u, v))
    return graph, ops, current


class TestRandomUpdateStreams:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(update_streams())
    def test_overlay_tracks_reference_edge_set(self, stream):
        graph, ops, final_edges = stream
        delta = DeltaGraph(graph)
        delta.apply(ops)
        assert delta.num_edges == len(final_edges)
        assert edge_set(delta) == final_edges
        rebuilt = CSRGraph.from_edges(graph.num_nodes, sorted(final_edges))
        compacted = delta.compact()
        assert np.array_equal(compacted.indptr, rebuilt.indptr)
        assert np.array_equal(compacted.indices, rebuilt.indices)
        # Region-digest scheme is path-independent: a fresh overlay on the
        # rebuilt graph fingerprints the same as the incrementally updated one.
        assert delta.fingerprint() == DeltaGraph(rebuilt).fingerprint()

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(update_streams(), st.integers(min_value=0, max_value=3))
    def test_distance_bound_is_conservative(self, stream, radius):
        """Brute force: every node whose depth-d ball sees a touched endpoint
        must have bound <= d."""
        graph, ops, final_edges = stream
        delta = DeltaGraph(graph)
        delta.apply(ops)
        new_graph = delta.compact()
        touched = delta.touched_nodes()
        if touched.size == 0:
            return
        bound = update_distance_bound(graph, new_graph, touched, radius)
        for host in (graph, new_graph):
            exact = min_hop_distances(host, touched, radius)
            assert np.all(bound <= exact)


# ----------------------------------------------------------------------
# Reach bounds
# ----------------------------------------------------------------------
class TestReachBounds:
    def test_min_hop_distances_on_a_path(self):
        graph = path_graph(6)
        distances = min_hop_distances(graph, [0], radius=3)
        assert distances.tolist() == [0, 1, 2, 3, 4, 4]  # 4 == radius + 1

    def test_multi_source_takes_nearest(self):
        graph = path_graph(7)
        distances = min_hop_distances(graph, [0, 6], radius=2)
        assert distances.tolist() == [0, 1, 2, 3, 2, 1, 0]

    def test_empty_sources_and_bad_sources(self):
        graph = path_graph(4)
        assert min_hop_distances(graph, [], radius=2).tolist() == [3, 3, 3, 3]
        with pytest.raises(ValueError):
            min_hop_distances(graph, [4], radius=2)
        with pytest.raises(ValueError):
            min_hop_distances(graph, [0], radius=-1)

    def test_bound_is_elementwise_min_over_both_topologies(self):
        # Entries computed on the old graph are judged by old-graph reach;
        # entries reused on the new graph by new-graph reach — the bound
        # must be the pointwise minimum so it covers both.
        graph = path_graph(8)
        delta = DeltaGraph(graph)
        delta.delete_edge(2, 3)
        delta.insert_edge(0, 7)
        new_graph = delta.compact()
        touched = delta.touched_nodes()
        assert set(touched.tolist()) == {0, 2, 3, 7}
        bound = update_distance_bound(graph, new_graph, touched, radius=4)
        old_exact = min_hop_distances(graph, touched, 4)
        new_exact = min_hop_distances(new_graph, touched, 4)
        assert np.array_equal(bound, np.minimum(old_exact, new_exact))

    def test_bound_diverges_from_single_topology_reach(self):
        # A lollipop: 0-1-2 chain plus a triangle 2-3-4, and an isolated
        # pair 5-6.  Deleting (1, 2) and inserting (1, 5) makes node 6
        # reachable only on the new topology — the min bound must see it.
        graph = CSRGraph.from_edges(
            7, [(0, 1), (1, 2), (2, 3), (2, 4), (3, 4), (5, 6)], name="lolly"
        )
        delta = DeltaGraph(graph)
        delta.delete_edge(1, 2)
        delta.insert_edge(1, 5)
        new_graph = delta.compact()
        touched = delta.touched_nodes()
        assert set(touched.tolist()) == {1, 2, 5}
        bound = update_distance_bound(graph, new_graph, touched, radius=3)
        old_exact = min_hop_distances(graph, touched, 3)
        new_exact = min_hop_distances(new_graph, touched, 3)
        # Node 6 sits by the insert endpoint: close on both.  Node 0 keeps
        # its old-graph reach; nothing strands it.  But the bound must not
        # simply be either single-topology map.
        assert np.array_equal(bound, np.minimum(old_exact, new_exact))
        assert bound[6] == 1


# ----------------------------------------------------------------------
# Engine-level differentials
# ----------------------------------------------------------------------
CONFIG = MeLoPPRConfig(
    stage_lengths=(2, 2),
    selector=RatioSelector(0.02),
    track_memory=False,
)


def churn_ops(current: set, num_nodes: int, rng: np.random.Generator, count=4):
    """A random valid op batch against (and mutating) ``current``."""
    ops = []
    for _ in range(count):
        if rng.random() < 0.5 and current:
            u, v = sorted(current)[rng.integers(len(current))]
            ops.append(("delete", u, v))
            current.discard((u, v))
        else:
            while True:
                u, v = int(rng.integers(num_nodes)), int(rng.integers(num_nodes))
                edge = (min(u, v), max(u, v))
                if u != v and edge not in current:
                    break
            ops.append(("insert", edge[0], edge[1]))
            current.add(edge)
    return ops


def assert_matches_rebuild(engine, queries, current_edges, num_nodes):
    rebuilt = CSRGraph.from_edges(num_nodes, sorted(current_edges))
    assert engine.solver.graph.fingerprint() == rebuilt.fingerprint()
    reference = MeLoPPRSolver(rebuilt, CONFIG)
    for query, result in zip(queries, engine.solve_batch(queries)):
        expected = dict(reference.solve(query).scores.items())
        assert dict(result.scores.items()) == expected


class TestEngineApplyUpdate:
    QUERIES = [PPRQuery(seed=s, k=15, length=4) for s in (1, 2, 3, 1, 2)]

    def run_churn(self, make_engine, steps=3):
        graph = barabasi_albert_graph(120, 2, rng=3)
        current = edge_set(graph)
        rng = np.random.default_rng(11)
        with make_engine(graph) as engine:
            engine.solve_batch(self.QUERIES)
            for _ in range(steps):
                ops = churn_ops(current, graph.num_nodes, rng)
                outcome = engine.apply_update(ops)
                assert outcome["ops"] == len(ops)
                assert outcome["new_fingerprint"] != outcome["old_fingerprint"]
                assert_matches_rebuild(
                    engine, self.QUERIES, current, graph.num_nodes
                )
            return engine

    def test_serial_with_both_caches(self):
        self.run_churn(
            lambda g: QueryEngine(
                MeLoPPRSolver(g, CONFIG),
                cache=SubgraphCache(1 << 20),
                result_cache=ScoreTableCache(1 << 20),
            )
        )

    def test_thread_pool(self):
        self.run_churn(
            lambda g: QueryEngine(
                MeLoPPRSolver(g, CONFIG),
                backend=ThreadPoolBackend(max_workers=2),
                cache=SubgraphCache(1 << 20),
                result_cache=ScoreTableCache(1 << 20),
            )
        )

    def test_sharded(self):
        def make(graph):
            partition = partition_graph(graph, num_shards=3, halo_depth=2)
            router = ShardRouter(
                partition, cache_bytes=1 << 20, result_cache_bytes=1 << 20
            )
            return QueryEngine(MeLoPPRSolver(graph, CONFIG), router=router)

        engine = self.run_churn(make)
        # The router swapped to the updated topology alongside the solver.
        assert engine.router.partition.host is engine.solver.graph

    def test_process_pool(self):
        self.run_churn(
            lambda g: QueryEngine(
                MeLoPPRSolver(g, CONFIG),
                backend=ProcessPoolBackend(num_workers=2),
                result_cache=ScoreTableCache(1 << 20),
            ),
            steps=2,
        )

    def test_invalid_batch_changes_nothing(self):
        graph = barabasi_albert_graph(50, 2, rng=0)
        engine = QueryEngine(
            MeLoPPRSolver(graph, CONFIG), cache=SubgraphCache(1 << 20)
        )
        engine.solve_batch(self.QUERIES)
        fingerprint = engine.solver.graph.fingerprint()
        hits_before = engine.cache.stats.hits
        u, v = min(edge_set(graph))
        with pytest.raises(ValueError):
            engine.apply_update([("insert", u, v)])  # already exists
        with pytest.raises(ValueError):
            engine.apply_update([])
        assert engine.solver.graph.fingerprint() == fingerprint
        assert engine.solver.graph is graph
        assert engine.cache.stats.hits == hits_before

    def test_surgical_invalidation_keeps_far_entries(self):
        # Two far-apart communities: updating one must keep the other's
        # cached extractions and score tables (and rekey the survivors).
        left = [(i, i + 1) for i in range(0, 9)]
        right = [(i, i + 1) for i in range(20, 29)]
        graph = CSRGraph.from_edges(40, left + right + [(9, 20)], name="two")
        engine = QueryEngine(
            MeLoPPRSolver(graph, CONFIG),
            cache=SubgraphCache(1 << 20),
            result_cache=ScoreTableCache(1 << 20),
        )
        queries = [PPRQuery(seed=25, k=10, length=4)]
        engine.solve_batch(queries)
        outcome = engine.apply_update([("insert", 0, 2)])
        # Seed 25 is far from nodes {0, 2}: every cached artefact survives.
        assert outcome["invalidated"]["subgraph_entries_dropped"] == 0
        assert outcome["invalidated"]["result_entries_dropped"] == 0
        assert outcome["invalidated"]["result_entries_rekeyed"] == 1
        before_hits = engine.cache.stats.hits
        engine.solve_batch(queries)
        assert engine.cache.stats.hits > before_hits
        assert engine.stats().result_cache.hits == 1
        assert_matches_rebuild(
            engine, queries, edge_set(graph) | {(0, 2)}, graph.num_nodes
        )

    def test_writer_barrier_under_concurrent_batches(self):
        graph = barabasi_albert_graph(150, 2, rng=5)
        current = edge_set(graph)
        rng = np.random.default_rng(13)
        op_batches = [churn_ops(current, graph.num_nodes, rng) for _ in range(4)]
        engine = QueryEngine(
            MeLoPPRSolver(graph, CONFIG),
            backend=ThreadPoolBackend(max_workers=2),
            cache=SubgraphCache(1 << 20),
            result_cache=ScoreTableCache(1 << 20),
        )
        queries = [PPRQuery(seed=s, k=10, length=4) for s in range(8)]
        errors = []
        stop = threading.Event()

        def hammer():
            try:
                while not stop.is_set():
                    engine.solve_batch(queries)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for ops in op_batches:
                engine.apply_update(ops)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        assert_matches_rebuild(engine, queries, current, graph.num_nodes)
        engine.close()


# ----------------------------------------------------------------------
# patch_partition
# ----------------------------------------------------------------------
class TestPatchPartition:
    def test_unaffected_shards_are_reused(self):
        # Two chains sharded by range: updating inside the second chain must
        # leave the first chain's shard object untouched.
        edges = [(i, i + 1) for i in range(0, 19)] + [
            (i, i + 1) for i in range(20, 39)
        ]
        graph = CSRGraph.from_edges(40, edges, name="chains")
        partition = partition_graph(
            graph, num_shards=2, strategy="range", halo_depth=2
        )
        delta = DeltaGraph(graph)
        delta.delete_edge(30, 31)
        new_graph = delta.compact()
        distances = update_distance_bound(
            graph, new_graph, delta.touched_nodes(), radius=2
        )
        patched, rebuilt = patch_partition(partition, new_graph, distances)
        assert rebuilt == (1,)
        assert patched.host is new_graph
        assert patched.shards[0] is partition.shards[0]
        assert patched.shards[1] is not partition.shards[1]
        assert not patched.shards[1].subgraph.graph.has_edge(
            patched.shards[1].subgraph.to_local(30),
            patched.shards[1].subgraph.to_local(31),
        )

    def test_node_count_change_rejected(self):
        graph = path_graph(6)
        partition = partition_graph(graph, num_shards=2, halo_depth=1)
        other = path_graph(5)
        with pytest.raises(ValueError, match="node set"):
            patch_partition(partition, other, np.zeros(6, dtype=np.int64))


# ----------------------------------------------------------------------
# structure_for / compacted-graph aliasing (satellite: fingerprint-LRU audit)
# ----------------------------------------------------------------------
class TestCompactedStructureSharing:
    def test_identical_topology_shares_structure(self, base):
        compacted = DeltaGraph(base).compact()  # reuses the base buffers
        assert structure_for(compacted) is structure_for(base)

    def test_changed_topology_gets_fresh_structure(self, base):
        u, v = min(edge_set(base))
        delta = DeltaGraph(base)
        delta.delete_edge(u, v)
        compacted = delta.compact()
        assert compacted.fingerprint() != base.fingerprint()
        assert structure_for(compacted) is not structure_for(base)
        # Differential: diffusion state derived from the compacted graph
        # matches a from-scratch rebuild, not the stale base topology.
        rebuilt = CSRGraph.from_edges(
            base.num_nodes, sorted(edge_set(base) - {(u, v)})
        )
        fresh = structure_for(rebuilt)
        assert fresh is structure_for(compacted)
        query = PPRQuery(seed=u, k=10, length=4)
        compact_scores = dict(
            MeLoPPRSolver(compacted, CONFIG).solve(query).scores.items()
        )
        rebuilt_scores = dict(
            MeLoPPRSolver(rebuilt, CONFIG).solve(query).scores.items()
        )
        assert compact_scores == rebuilt_scores
