"""Smoke and schema tests for the E13 result-cache study and its benchmark.

The result-cache benchmark promises the same JSON contract as the other
serving benchmarks (a ``runs`` list with ``label``/``throughput_qps``),
which is what lets ``benchmarks/check_regression.py`` gate it against the
committed ``benchmarks/baselines/result_cache.json`` uniformly — so the
study schema, the bench script and the baseline are tested side by side
here (mirroring ``tests/test_process_study.py``).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.experiments.result_cache_study import (
    format_result_cache,
    run_result_cache_study,
)

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def load_bench_module(name):
    """Import a benchmark script by file path (benchmarks/ is not a package)."""
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestResultCacheStudySchema:
    @pytest.fixture(scope="class")
    def study(self):
        return run_result_cache_study(
            num_queries=24, num_seeds=6, skews=(0.0, 1.1)
        )

    def test_runs_cover_the_sweep(self, study):
        labels = [run.label for run in study.runs]
        assert labels == ["zipf0:off", "zipf0:on", "zipf1.1:off", "zipf1.1:on"]
        by_label = study.by_label()
        assert by_label["zipf1.1:on"].cached is True
        assert by_label["zipf1.1:off"].cached is False

    def test_cached_runs_report_hit_rate_and_speedup(self, study):
        for run in study.runs:
            if run.cached:
                assert run.result_cache_hit_rate is not None
                assert 0.0 <= run.result_cache_hit_rate <= 1.0
                assert run.speedup_vs_uncached is not None
                assert run.speedup_vs_uncached > 0.0
            else:
                assert run.result_cache_hit_rate is None
                assert run.speedup_vs_uncached is None

    def test_hot_stream_actually_hits(self, study):
        # 24 arrivals over 6 seeds: at most 6 misses even uniformly, so the
        # hit rate must clear 50% — otherwise the study measured a cold
        # cache and its speedups are meaningless.
        assert study.by_label()["zipf1.1:on"].result_cache_hit_rate > 0.5

    def test_as_dict_schema(self, study):
        payload = study.as_dict()
        assert set(payload) == {
            "dataset",
            "backend",
            "num_queries",
            "num_seeds",
            "k",
            "stage_lengths",
            "selection_ratio",
            "skews",
            "runs",
        }
        for run in payload["runs"]:
            assert set(run) == {
                "label",
                "skew",
                "cached",
                "num_queries",
                "wall_seconds",
                "throughput_qps",
                "mean_latency_seconds",
                "result_cache_hit_rate",
                "subgraph_hit_rate",
                "speedup_vs_uncached",
            }
            assert run["throughput_qps"] > 0.0
        document = json.dumps(payload)
        assert '"throughput_qps"' in document

    def test_format_renders_every_run(self, study):
        table = format_result_cache(study)
        assert "E13" in table
        for run in study.runs:
            assert run.label in table


class TestResultCacheBenchScript:
    def test_bench_json_contract(self):
        bench = load_bench_module("bench_result_cache")
        study = bench.run_benchmark(num_queries=16, num_seeds=4, skews=(1.1,))
        payload = json.loads(bench.study_json(study))
        assert [run["label"] for run in payload["runs"]] == [
            "zipf1.1:off",
            "zipf1.1:on",
        ]
        for run in payload["runs"]:
            assert run["throughput_qps"] > 0.0

    def test_committed_baseline_matches_bench_labels(self):
        document = json.loads(
            (BENCH_DIR / "baselines" / "result_cache.json").read_text()
        )
        metrics = document["metrics"]
        assert metrics, "result_cache baseline has no metrics"
        assert {"zipf1.1:off", "zipf1.1:on"} <= set(metrics)
        for value in metrics.values():
            assert value > 0.0
        # The committed baseline itself must witness the 2x acceptance
        # claim, or the gate would happily pin a regressed ratio.
        assert metrics["zipf1.1:on"] / metrics["zipf1.1:off"] > 2.0
