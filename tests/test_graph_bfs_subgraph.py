"""Tests for repro.graph.bfs and repro.graph.subgraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.bfs import bfs_frontier_sizes, bfs_levels, extract_ego_subgraph
from repro.graph.builder import GraphBuilder
from repro.graph.subgraph import Subgraph


class TestBFSLevels:
    def test_depth_zero_returns_only_source(self, path_graph):
        result = bfs_levels(path_graph, 2, 0)
        assert list(result.nodes) == [2]
        assert list(result.levels) == [0]

    def test_path_levels(self, path_graph):
        result = bfs_levels(path_graph, 0, 3)
        assert set(result.nodes.tolist()) == {0, 1, 2, 3}
        assert dict(zip(result.nodes.tolist(), result.levels.tolist()))[3] == 3

    def test_depth_limits_reach(self, path_graph):
        result = bfs_levels(path_graph, 0, 2)
        assert 3 not in result.nodes
        assert 4 not in result.nodes

    def test_star_one_hop(self, star_graph):
        result = bfs_levels(star_graph, 0, 1)
        assert result.num_nodes == 7

    def test_levels_are_shortest_distances(self, star_graph):
        result = bfs_levels(star_graph, 1, 2)
        distances = dict(zip(result.nodes.tolist(), result.levels.tolist()))
        assert distances[0] == 1
        assert distances[2] == 2

    def test_edges_scanned_counts_frontier_degrees(self, star_graph):
        result = bfs_levels(star_graph, 0, 1)
        assert result.edges_scanned == 6

    def test_frontier_sizes(self, path_graph):
        sizes = bfs_frontier_sizes(path_graph, 0, 2)
        assert list(sizes) == [1, 1, 1]

    def test_disconnected_component_not_reached(self):
        graph = GraphBuilder(num_nodes=4).add_edge(0, 1).add_edge(2, 3).build()
        result = bfs_levels(graph, 0, 5)
        assert set(result.nodes.tolist()) == {0, 1}

    def test_invalid_source(self, path_graph):
        with pytest.raises(ValueError):
            bfs_levels(path_graph, 99, 1)

    def test_negative_depth(self, path_graph):
        with pytest.raises(ValueError):
            bfs_levels(path_graph, 0, -1)

    def test_nodes_and_levels_aligned(self, small_ba_graph):
        result = bfs_levels(small_ba_graph, 0, 3)
        assert result.nodes.size == result.levels.size
        assert result.levels[0] == 0


class TestExtractEgoSubgraph:
    def test_subgraph_contains_source_as_local_zero(self, path_graph):
        subgraph, _ = extract_ego_subgraph(path_graph, 2, 1)
        assert subgraph.to_global(0) == 2

    def test_subgraph_edges_are_induced(self, star_graph):
        subgraph, _ = extract_ego_subgraph(star_graph, 0, 1)
        assert subgraph.num_nodes == 7
        assert subgraph.num_edges == 6

    def test_depth_growth_is_monotone(self, small_ba_graph):
        sizes = []
        for depth in range(4):
            subgraph, _ = extract_ego_subgraph(small_ba_graph, 5, depth)
            sizes.append(subgraph.num_nodes)
        assert sizes == sorted(sizes)

    def test_edges_outside_ball_excluded(self, path_graph):
        subgraph, _ = extract_ego_subgraph(path_graph, 0, 2)
        assert subgraph.num_nodes == 3
        assert subgraph.num_edges == 2

    def test_bfs_result_is_returned(self, path_graph):
        _, bfs = extract_ego_subgraph(path_graph, 0, 2)
        assert bfs.source == 0
        assert bfs.depth == 2


class TestSubgraph:
    def test_induced_degree_preserved_internally(self, triangle_graph):
        subgraph = Subgraph.induced(triangle_graph, [0, 1, 2])
        assert subgraph.graph.degree(0) == 2

    def test_induced_partial(self, triangle_graph):
        subgraph = Subgraph.induced(triangle_graph, [0, 1])
        assert subgraph.num_edges == 1

    def test_induced_duplicate_nodes_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            Subgraph.induced(triangle_graph, [0, 0, 1])

    def test_local_global_roundtrip(self, star_graph):
        subgraph = Subgraph.induced(star_graph, [3, 0, 5])
        for local in range(subgraph.num_nodes):
            assert subgraph.to_local(subgraph.to_global(local)) == local

    def test_to_local_missing_node(self, star_graph):
        subgraph = Subgraph.induced(star_graph, [0, 1])
        with pytest.raises(KeyError):
            subgraph.to_local(6)

    def test_contains_global(self, star_graph):
        subgraph = Subgraph.induced(star_graph, [0, 1])
        assert subgraph.contains_global(1)
        assert not subgraph.contains_global(2)

    def test_localize_vector(self, star_graph):
        subgraph = Subgraph.induced(star_graph, [2, 4])
        dense = np.arange(star_graph.num_nodes, dtype=float)
        assert list(subgraph.localize_vector(dense)) == [2.0, 4.0]

    def test_globalize_scores(self, star_graph):
        subgraph = Subgraph.induced(star_graph, [2, 4])
        dense = subgraph.globalize_scores(np.array([1.0, 2.0]), star_graph.num_nodes)
        assert dense[2] == 1.0
        assert dense[4] == 2.0
        assert dense.sum() == 3.0

    def test_globalize_wrong_length(self, star_graph):
        subgraph = Subgraph.induced(star_graph, [2, 4])
        with pytest.raises(ValueError):
            subgraph.globalize_scores(np.array([1.0]), star_graph.num_nodes)

    def test_mismatched_global_ids_length_rejected(self, triangle_graph):
        from repro.graph.csr import CSRGraph

        inner = CSRGraph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            Subgraph(inner, np.array([0, 1, 2]))

    def test_induced_matches_networkx(self, small_ba_graph):
        import networkx as nx

        nodes = [0, 1, 2, 3, 4, 10, 20]
        subgraph = Subgraph.induced(small_ba_graph, nodes)
        nx_sub = small_ba_graph.to_networkx().subgraph(nodes)
        assert subgraph.num_edges == nx_sub.number_of_edges()
