"""Smoke and schema tests for the E14 kernel study and its benchmark CLI."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.diffusion.kernels import available_kernels
from repro.experiments.kernel_study import format_kernels, run_kernel_study

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def load_bench_module(name):
    """Import a benchmark script by file path (benchmarks/ is not a package)."""
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestKernelStudySchema:
    @pytest.fixture(scope="class")
    def study(self):
        # Small workload: G1 ego, short diffusions, single timing repeat.
        return run_kernel_study(
            dataset="G1", center=42, depth=3, length=4, repeats=1, k=20
        )

    def test_runs_cover_every_kernel_plus_auto(self, study):
        labels = [run.label for run in study.runs]
        assert labels[0] == "reference"
        assert set(labels) == set(available_kernels()) | {"auto"}

    def test_auto_resolves_and_speedups_are_relative(self, study):
        by_label = study.by_label()
        assert by_label["auto"].resolved in available_kernels()
        assert by_label["reference"].speedup_vs_reference == pytest.approx(1.0)
        for run in study.runs:
            assert run.throughput_qps > 0.0

    def test_as_dict_schema(self, study):
        document = study.as_dict()
        assert document["dataset"] == "G1"
        assert document["num_nodes"] > 0
        for run in document["runs"]:
            assert set(run) == {
                "label",
                "resolved",
                "jit_enabled",
                "num_diffusions",
                "wall_seconds",
                "throughput_qps",
                "speedup_vs_reference",
                "propagations",
            }

    def test_format_renders_every_run(self, study):
        table = format_kernels(study)
        for run in study.runs:
            assert run.label in table

    def test_non_reference_labels_must_include_reference(self):
        study = run_kernel_study(
            dataset="G1", center=7, depth=2, length=2, repeats=1, k=10,
            kernels=("csr",),
        )
        assert [run.label for run in study.runs] == ["reference", "csr"]

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_kernel_study(repeats=0)


class TestKernelBenchScript:
    def test_bench_json_contract(self):
        bench = load_bench_module("bench_kernels")
        document = bench.run_benchmark(repeats=1)
        labels = [run["label"] for run in document["runs"]]
        assert "bfs_extract" in labels
        assert "diffusion:legacy" in labels
        for kernel in bench.KERNEL_LABELS:
            assert f"diffusion:{kernel}" in labels
        assert "meloppr:auto" in labels
        for run in document["runs"]:
            assert run["throughput_qps"] > 0.0
