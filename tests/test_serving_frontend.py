"""Tests for the async serving frontend.

The load-bearing property is the differential one: scores served through
``AsyncBackend × MicroBatcher`` — dedup on and off, with and without a
``ShardRouter`` — must be **bit-identical** to ``QueryEngine.solve_batch``
on a ``SerialBackend``.  Around it: dedup fan-out accounting, per-query
deadlines, admission-control shedding under overload (the queue must never
grow past its bound), and the latency telemetry exported through
``EngineStats``.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.diffusion.sparse_vector import SparseScoreVector
from repro.graph.partition import partition_graph
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.serving import (
    LatencyHistogram,
    QueryEngine,
    SerialBackend,
    ShardRouter,
    SubgraphCache,
)
from repro.serving.frontend import (
    AdmissionController,
    AsyncBackend,
    BatchPolicy,
    DeadlineExceededError,
    MicroBatcher,
    QueryShedError,
)


@pytest.fixture()
def config():
    """Paper-shaped solver config with memory tracking off (fast tests)."""
    return MeLoPPRConfig(stage_lengths=(3, 3), track_memory=False)


@pytest.fixture()
def queries():
    """A repeated-seed batch (duplicates give dedup and caches work)."""
    seeds = [3, 11, 3, 27, 11, 3, 42, 27]
    return [PPRQuery(seed=seed, k=40, alpha=0.85, length=6) for seed in seeds]


@pytest.fixture()
def reference_scores(small_ba_graph, config, queries):
    """Exact score dicts from the serial engine — the comparison target."""
    with QueryEngine(
        MeLoPPRSolver(small_ba_graph, config), backend=SerialBackend()
    ) as engine:
        return [dict(r.scores.items()) for r in engine.solve_batch(queries)]


class SleepySolver(PPRSolver):
    """A stub solver with a controllable service time (no ``plan`` method)."""

    name = "sleepy"

    def __init__(self, graph, delay_seconds: float = 0.05) -> None:
        super().__init__(graph)
        self.delay_seconds = delay_seconds

    def solve(self, query: PPRQuery) -> PPRResult:
        time.sleep(self.delay_seconds)
        return PPRResult(query=query, scores=SparseScoreVector({query.seed: 1.0}))


class ExplodingSolver(PPRSolver):
    """A stub solver whose every query fails."""

    name = "exploding"

    def solve(self, query: PPRQuery) -> PPRResult:
        raise RuntimeError(f"no answer for seed {query.seed}")


def submit_all(batcher: MicroBatcher, queries, timeout_ms=None):
    """Gather all submissions concurrently (exceptions as outcomes)."""
    return asyncio.gather(
        *(batcher.submit(query, timeout_ms=timeout_ms) for query in queries),
        return_exceptions=True,
    )


class TestAsyncBackendEquivalence:
    def test_scores_bit_identical_to_serial(
        self, small_ba_graph, config, queries, reference_scores
    ):
        with QueryEngine(
            MeLoPPRSolver(small_ba_graph, config), backend=AsyncBackend(4)
        ) as engine:
            results = engine.solve_batch(queries)
        assert [dict(r.scores.items()) for r in results] == reference_scores

    def test_with_cache_and_repeat_batches(self, small_ba_graph, config, queries, reference_scores):
        with QueryEngine(
            MeLoPPRSolver(small_ba_graph, config),
            backend=AsyncBackend(4),
            cache=SubgraphCache(),
        ) as engine:
            cold = engine.solve_batch(queries)
            warm = engine.solve_batch(queries)
        assert [dict(r.scores.items()) for r in cold] == reference_scores
        assert [dict(r.scores.items()) for r in warm] == reference_scores


class TestMicroBatcherDifferential:
    """The acceptance-criteria matrix: dedup × sharding, bit-identical."""

    @pytest.mark.parametrize("dedup", [True, False], ids=["dedup", "nodedup"])
    @pytest.mark.parametrize("sharded", [False, True], ids=["plain", "router"])
    def test_bit_identical_scores(
        self, small_ba_graph, config, queries, reference_scores, dedup, sharded
    ):
        if sharded:
            partition = partition_graph(
                small_ba_graph, 2, strategy="hash", halo_depth=3
            )
            engine = QueryEngine(
                MeLoPPRSolver(small_ba_graph, config),
                backend=AsyncBackend(4),
                router=ShardRouter(partition),
            )
        else:
            engine = QueryEngine(
                MeLoPPRSolver(small_ba_graph, config),
                backend=AsyncBackend(4),
                cache=SubgraphCache(),
            )
        policy = BatchPolicy(max_batch_size=4, max_wait_ms=5.0, dedup=dedup)

        async def run():
            async with MicroBatcher(engine, policy) as batcher:
                return await submit_all(batcher, queries)

        with engine:
            outcomes = asyncio.run(run())
        for outcome in outcomes:
            assert isinstance(outcome, PPRResult), outcome
        assert [dict(r.scores.items()) for r in outcomes] == reference_scores

    def test_single_query_policy_matches_reference(
        self, small_ba_graph, config, queries, reference_scores
    ):
        # max_batch_size=1, max_wait 0: no coalescing at all, still identical.
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0)

        async def run():
            async with MicroBatcher(engine, policy) as batcher:
                return await submit_all(batcher, queries)

        with engine:
            outcomes = asyncio.run(run())
        assert [dict(r.scores.items()) for r in outcomes] == reference_scores


class TestDedup:
    def test_identical_inflight_queries_share_one_computation(self, small_ba_graph):
        solver = SleepySolver(small_ba_graph, delay_seconds=0.01)
        engine = QueryEngine(solver)
        query = PPRQuery(seed=5, k=10)

        async def run():
            async with MicroBatcher(
                engine, BatchPolicy(max_batch_size=16, max_wait_ms=100.0)
            ) as batcher:
                results = await submit_all(batcher, [query] * 6)
                return results, batcher.stats()

        with engine:
            results, stats = asyncio.run(run())
        # One engine execution fanned out to every waiter.
        assert stats.unique_executed == 1
        assert stats.dedup_hits == 5
        assert stats.batched_queries == 6
        first = results[0]
        assert all(result is first for result in results)

    def test_dedup_disabled_computes_every_waiter(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.0))
        query = PPRQuery(seed=5, k=10)

        async def run():
            async with MicroBatcher(
                engine,
                BatchPolicy(max_batch_size=16, max_wait_ms=100.0, dedup=False),
            ) as batcher:
                await submit_all(batcher, [query] * 6)
                return batcher.stats()

        with engine:
            stats = asyncio.run(run())
        assert stats.unique_executed == 6
        assert stats.dedup_hits == 0

    def test_wait_window_anchored_at_arrival_not_pop(self, small_ba_graph):
        # A query that queued behind a busy engine for longer than
        # max_wait_ms must not wait a *second* window once the engine frees
        # up: its batch closes immediately with whatever is queued.
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.15))
        policy = BatchPolicy(max_batch_size=2, max_wait_ms=100.0)

        async def run():
            async with MicroBatcher(engine, policy) as batcher:
                loop = asyncio.get_running_loop()
                # Two identical submissions fill the first batch instantly
                # (no wait window), and dedup makes it one 150 ms solve.
                blockers = [
                    asyncio.ensure_future(batcher.submit(PPRQuery(seed=1, k=10)))
                    for _ in range(2)
                ]
                await asyncio.sleep(0.03)  # first batch is executing
                queued_at = loop.time()
                queued = asyncio.ensure_future(
                    batcher.submit(PPRQuery(seed=2, k=10))
                )
                await asyncio.gather(*blockers, queued)
                return loop.time() - queued_at

        with engine:
            waited = asyncio.run(run())
        # The queued query waits ~120 ms behind the blocker batch — past its
        # own 100 ms window — then solves in 150 ms: ~270 ms total.  A
        # pop-anchored timer would restart the 100 ms window when the
        # scheduler frees up (~370 ms).  The 50 ms headroom absorbs CI noise
        # while cleanly separating the two behaviours.
        assert waited < 0.32

    def test_distinct_queries_are_not_deduplicated(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.0))
        queries = [PPRQuery(seed=5, k=10), PPRQuery(seed=5, k=11)]

        async def run():
            async with MicroBatcher(
                engine, BatchPolicy(max_batch_size=4, max_wait_ms=100.0)
            ) as batcher:
                await submit_all(batcher, queries)
                return batcher.stats()

        with engine:
            stats = asyncio.run(run())
        assert stats.unique_executed == 2


class TestDeadlines:
    def test_deadline_while_queued_raises(self, small_ba_graph):
        # One slow query occupies the engine; the next one's deadline passes
        # while it waits for the first batch to finish.
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.15))
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0)

        async def run():
            async with MicroBatcher(engine, policy) as batcher:
                slow = asyncio.ensure_future(
                    batcher.submit(PPRQuery(seed=1, k=10))
                )
                await asyncio.sleep(0.03)  # let the first batch start
                tight = asyncio.ensure_future(
                    batcher.submit(PPRQuery(seed=2, k=10), timeout_ms=10.0)
                )
                return await asyncio.gather(slow, tight, return_exceptions=True)

        with engine:
            slow_result, tight_result = asyncio.run(run())
        assert isinstance(slow_result, PPRResult)
        assert isinstance(tight_result, DeadlineExceededError)

    def test_generous_deadline_completes(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with MicroBatcher(engine) as batcher:
                return await batcher.submit(
                    PPRQuery(seed=3, k=10), timeout_ms=60_000.0
                )

        with engine:
            result = asyncio.run(run())
        assert isinstance(result, PPRResult)

    def test_expired_queries_are_counted(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.15))
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0)

        async def run():
            async with MicroBatcher(engine, policy) as batcher:
                first = asyncio.ensure_future(
                    batcher.submit(PPRQuery(seed=1, k=10))
                )
                await asyncio.sleep(0.03)
                second = asyncio.ensure_future(
                    batcher.submit(PPRQuery(seed=2, k=10), timeout_ms=5.0)
                )
                await asyncio.gather(first, second, return_exceptions=True)
                return batcher.stats()

        with engine:
            stats = asyncio.run(run())
        assert stats.admission.expired == 1
        assert stats.admission.completed == 1


class TestAdmissionControl:
    def test_controller_counters(self):
        controller = AdmissionController(max_pending=2)
        assert controller.try_admit() and controller.try_admit()
        assert not controller.try_admit()  # full: shed
        controller.complete(0.010)
        assert controller.try_admit()  # capacity released
        stats = controller.stats()
        assert stats.admitted == 3
        assert stats.shed == 1
        assert stats.completed == 1
        assert stats.pending == 2
        assert stats.offered == 4
        assert stats.shed_rate == pytest.approx(0.25)
        assert stats.latency.count == 1

    def test_admit_raises_when_full(self):
        controller = AdmissionController(max_pending=1)
        controller.admit()
        with pytest.raises(QueryShedError, match="shed"):
            controller.admit()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionController(max_pending=0)

    def test_overload_sheds_and_queue_stays_bounded(self, small_ba_graph):
        """The acceptance stress test: overload must shed, never queue up."""
        capacity = 4
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.02))
        admission = AdmissionController(max_pending=capacity)
        policy = BatchPolicy(max_batch_size=2, max_wait_ms=0.0)
        offered = 40
        max_depth_seen = 0

        async def run():
            nonlocal max_depth_seen
            async with MicroBatcher(engine, policy, admission) as batcher:
                tasks = []
                for index in range(offered):
                    tasks.append(
                        asyncio.ensure_future(
                            batcher.submit(PPRQuery(seed=index % 8, k=10))
                        )
                    )
                    max_depth_seen = max(max_depth_seen, batcher.queue_depth)
                    await asyncio.sleep(0)  # open loop: keep firing
                return await asyncio.gather(*tasks, return_exceptions=True)

        with engine:
            outcomes = asyncio.run(run())

        completed = sum(isinstance(o, PPRResult) for o in outcomes)
        shed = sum(isinstance(o, QueryShedError) for o in outcomes)
        assert completed + shed == offered
        assert shed > 0, "overload must shed"
        assert completed >= 1
        # The queue never grew past the admission bound.
        assert max_depth_seen <= capacity
        stats = admission.stats()
        assert stats.pending == 0
        assert stats.shed == shed
        assert stats.completed == completed
        assert stats.latency.count == completed

    def test_stats_reset(self):
        controller = AdmissionController(max_pending=4)
        controller.admit()
        controller.complete(0.001)
        assert not all(
            value == 0
            for key, value in controller.stats().as_dict().items()
            if isinstance(value, int) and key != "capacity"
        )
        controller.reset_stats()
        stats = controller.stats()
        assert stats.completed == 0 and stats.shed == 0
        assert stats.latency.count == 0


class TestBatcherLifecycle:
    def test_submit_before_start_raises(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, 0.0))
        batcher = MicroBatcher(engine)

        async def run():
            with pytest.raises(RuntimeError, match="not running"):
                await batcher.submit(PPRQuery(seed=1, k=10))

        with engine:
            asyncio.run(run())

    def test_submit_after_stop_raises(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, 0.0))

        async def run():
            batcher = MicroBatcher(engine)
            await batcher.start()
            await batcher.stop()
            with pytest.raises(RuntimeError, match="not running"):
                await batcher.submit(PPRQuery(seed=1, k=10))

        with engine:
            asyncio.run(run())

    def test_stop_drains_queued_submissions(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, 0.01))

        async def run():
            batcher = MicroBatcher(
                engine, BatchPolicy(max_batch_size=4, max_wait_ms=50.0)
            )
            await batcher.start()
            tasks = [
                asyncio.ensure_future(batcher.submit(PPRQuery(seed=s, k=10)))
                for s in range(3)
            ]
            await asyncio.sleep(0)  # queued, not yet batched
            await batcher.stop()
            return await asyncio.gather(*tasks, return_exceptions=True)

        with engine:
            outcomes = asyncio.run(run())
        assert all(isinstance(o, PPRResult) for o in outcomes)

    def test_double_start_raises(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, 0.0))

        async def run():
            async with MicroBatcher(engine) as batcher:
                with pytest.raises(RuntimeError, match="already started"):
                    await batcher.start()

        with engine:
            asyncio.run(run())

    def test_cancelled_waiter_is_released_from_admission(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, 0.05))
        admission = AdmissionController(max_pending=8)

        async def run():
            async with MicroBatcher(
                engine, BatchPolicy(max_batch_size=2, max_wait_ms=50.0), admission
            ) as batcher:
                keeper = asyncio.ensure_future(
                    batcher.submit(PPRQuery(seed=1, k=10))
                )
                quitter = asyncio.ensure_future(
                    batcher.submit(PPRQuery(seed=2, k=10))
                )
                await asyncio.sleep(0)  # both queued, batch not yet formed
                quitter.cancel()
                results = await asyncio.gather(
                    keeper, quitter, return_exceptions=True
                )
                return results

        with engine:
            keeper_result, quitter_result = asyncio.run(run())
        assert isinstance(keeper_result, PPRResult)
        assert isinstance(quitter_result, asyncio.CancelledError)
        stats = admission.stats()
        assert stats.cancelled == 1
        assert stats.completed == 1
        assert stats.pending == 0

    def test_engine_failure_propagates_to_every_waiter(self, small_ba_graph):
        engine = QueryEngine(ExplodingSolver(small_ba_graph))

        async def run():
            async with MicroBatcher(
                engine, BatchPolicy(max_batch_size=4, max_wait_ms=50.0)
            ) as batcher:
                outcomes = await submit_all(
                    batcher, [PPRQuery(seed=s, k=10) for s in range(3)]
                )
                return outcomes, batcher.stats()

        with engine:
            outcomes, stats = asyncio.run(run())
        assert all(isinstance(o, RuntimeError) for o in outcomes)
        assert stats.admission.failed == 3
        assert stats.admission.pending == 0


class TestBatchPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            BatchPolicy(max_wait_ms=-1.0)

    def test_label(self):
        assert BatchPolicy(8, 2.0).label == "b8w2"
        assert BatchPolicy(1, 0.0, dedup=False).label == "b1w0-nodedup"

    def test_as_dict(self):
        payload = BatchPolicy(4, 1.5).as_dict()
        assert payload == {"max_batch_size": 4, "max_wait_ms": 1.5, "dedup": True}


class TestLatencyTelemetry:
    def test_empty_histogram(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot.count == 0
        assert snapshot.p50_seconds == 0.0
        assert snapshot.p99_seconds == 0.0

    def test_percentiles_bracket_known_samples(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.record(0.001)
        snapshot = histogram.snapshot()
        assert snapshot.count == 100
        assert snapshot.mean_seconds == pytest.approx(0.001)
        # Bucketed estimate: within one bucket width (~12 %) above the truth.
        assert 0.001 <= snapshot.p50_seconds <= 0.00113
        assert snapshot.p50_seconds <= snapshot.p95_seconds <= snapshot.p99_seconds
        assert snapshot.p99_seconds <= snapshot.max_seconds

    def test_percentiles_are_monotonic_across_mixed_samples(self):
        histogram = LatencyHistogram()
        for milliseconds in (1, 1, 1, 1, 1, 1, 1, 1, 5, 50):
            histogram.record(milliseconds / 1e3)
        snapshot = histogram.snapshot()
        assert snapshot.p50_seconds < snapshot.p95_seconds <= snapshot.p99_seconds
        assert snapshot.p99_seconds == pytest.approx(0.05)

    def test_reset(self):
        histogram = LatencyHistogram()
        histogram.record(0.5)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.snapshot().max_seconds == 0.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            LatencyHistogram().percentile(1.5)


class TestEngineStatsIntegration:
    def test_engine_exports_latency_percentiles(self, small_ba_graph, config, queries):
        with QueryEngine(MeLoPPRSolver(small_ba_graph, config)) as engine:
            engine.solve_batch(queries)
            stats = engine.stats()
        assert stats.latency is not None
        assert stats.latency.count == len(queries)
        assert 0 < stats.latency.p50_seconds <= stats.latency.p99_seconds
        payload = stats.as_dict()
        assert payload["latency"]["count"] == len(queries)

    def test_reset_stats_clears_counters(self, small_ba_graph, config, queries):
        cache = SubgraphCache()
        with QueryEngine(
            MeLoPPRSolver(small_ba_graph, config), cache=cache
        ) as engine:
            engine.solve_batch(queries)
            engine.reset_stats()
            stats = engine.stats()
            assert stats.queries_served == 0
            assert stats.batches == 0
            assert stats.latency.count == 0
            # Cache counters survive by default...
            assert stats.cache.lookups > 0
            engine.reset_stats(reset_cache_stats=True)
            # ...and are zeroed on request, keeping the warm entries.
            stats = engine.stats()
            assert stats.cache.lookups == 0
            assert stats.cache.num_entries > 0

    def test_router_cache_stats_are_uniform(self, small_ba_graph, config, queries):
        partition = partition_graph(small_ba_graph, 2, strategy="hash", halo_depth=3)
        router = ShardRouter(partition)
        with QueryEngine(
            MeLoPPRSolver(small_ba_graph, config), router=router
        ) as engine:
            engine.solve_batch(queries)
            stats = engine.stats()
        # A shard-routed engine reports the same cache shape as a cached one.
        assert stats.cache is not None
        assert stats.cache.lookups > 0
        assert stats.cache.hit_rate == stats.router.hit_rate
        payload = stats.as_dict()
        assert payload["cache"]["hits"] == stats.cache.hits

    def test_router_reset_stats(self, small_ba_graph, config, queries):
        partition = partition_graph(small_ba_graph, 2, strategy="hash", halo_depth=3)
        router = ShardRouter(partition)
        with QueryEngine(
            MeLoPPRSolver(small_ba_graph, config), router=router
        ) as engine:
            engine.solve_batch(queries)
            engine.reset_stats(reset_cache_stats=True)
            stats = engine.stats()
        assert stats.router.total_extractions == 0
        assert stats.cache is not None and stats.cache.lookups == 0
