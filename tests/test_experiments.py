"""Tests for the experiment harness (one class per paper artefact).

These are shape tests: they run each experiment at reduced seed counts and
check the qualitative claims of the paper rather than exact numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablation_stage_split import format_stage_split, run_stage_split_ablation
from repro.experiments.fig5_scalability import format_fig5, run_fig5
from repro.experiments.fig6_sparsity import format_fig6, run_fig6
from repro.experiments.fig7_tradeoff import format_fig7, run_fig7
from repro.experiments.quantization_study import format_quantization, run_quantization_study
from repro.experiments.reporting import (
    format_megabytes,
    format_milliseconds,
    format_ratio,
    format_table,
)
from repro.experiments.score_table_study import format_score_table, run_score_table_study
from repro.experiments.table1_resources import format_table1, run_table1
from repro.experiments.table2_memory import format_table2, run_table2
from repro.experiments.workloads import PAPER_K, PAPER_LENGTH, make_workload, sample_seeds


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 40]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_helpers(self):
        assert format_ratio(2.5) == "2.50x"
        assert format_ratio(float("inf")) == "inf"
        assert format_megabytes(1024 * 1024) == "1.000"
        assert format_milliseconds(0.001) == "1.000"


class TestWorkloads:
    def test_make_workload_defaults(self):
        workload = make_workload("G1", num_seeds=3)
        assert workload.num_queries == 3
        assert all(q.k == PAPER_K for q in workload.queries)
        assert all(q.length == PAPER_LENGTH for q in workload.queries)

    def test_workload_deterministic(self):
        a = make_workload("G2", num_seeds=4, rng=9)
        b = make_workload("G2", num_seeds=4, rng=9)
        assert a.seeds == b.seeds

    def test_sample_seeds_respects_degree(self, star_graph):
        seeds = sample_seeds(star_graph, 3, rng=1, min_degree=2)
        assert list(seeds) == [0]

    def test_sample_seeds_distinct(self, small_ba_graph):
        seeds = sample_seeds(small_ba_graph, 50, rng=1)
        assert len(set(seeds.tolist())) == len(seeds)

    def test_sample_seeds_invalid_count(self, small_ba_graph):
        with pytest.raises(ValueError):
            sample_seeds(small_ba_graph, 0)

    def test_custom_graph_workload(self, small_ba_graph):
        workload = make_workload("custom", num_seeds=2, graph=small_ba_graph)
        assert workload.graph is small_ba_graph


class TestFig5:
    @pytest.fixture(scope="class")
    def study(self):
        return run_fig5(num_seeds=3, parallelisms=(1, 2, 16))

    def test_latency_decreases_with_parallelism(self, study):
        compute = [
            p.fpga_diffusion_seconds + p.fpga_scheduling_seconds for p in study.points
        ]
        assert compute == sorted(compute, reverse=True)

    def test_meaningful_speedup_at_p16(self, study):
        assert study.speedup_from_first()[16] > 2.0

    def test_scheduling_overhead_bounds(self, study):
        for point in study.points:
            if point.parallelism == 1:
                assert point.scheduling_fraction == 0.0
            else:
                assert point.scheduling_fraction < 0.40

    def test_cpu_and_data_movement_constant(self, study):
        cpu = {point.cpu_seconds for point in study.points}
        movement = {point.fpga_data_movement_seconds for point in study.points}
        assert len(cpu) == 1
        assert len(movement) == 1

    def test_format(self, study):
        text = format_fig5(study)
        assert "Fig. 5" in text
        assert "FPGA-Diffusion" in text


class TestTable1:
    def test_model_close_to_paper(self):
        study = run_table1()
        assert study.max_lut_error() < 0.03
        assert study.max_bram_error() < 0.03

    def test_format(self):
        text = format_table1(run_table1())
        assert "Table I" in text
        assert "BRAM %" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def study(self):
        # Modelled memory keeps this test fast and deterministic.
        return run_table2(
            datasets=("G1", "G3"), num_seeds=3, use_tracemalloc=False
        )

    def test_meloppr_uses_less_memory(self, study):
        for row in study.rows:
            assert row.cpu_reduction_mean > 1.0
            assert row.fpga_reduction_mean > row.cpu_reduction_mean

    def test_denser_graph_saves_more(self, study):
        by_dataset = study.by_dataset()
        assert by_dataset["G3"].fpga_reduction_mean > by_dataset["G1"].fpga_reduction_mean * 0.5

    def test_format(self, study):
        text = format_table2(study)
        assert "Table II" in text
        assert "G1" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def study(self):
        return run_fig6(datasets=("G1", "G2"), ratios=(0.01, 0.05, 0.3), num_seeds=3)

    def test_precision_increases_with_ratio(self, study):
        precisions = [point.precision for point in study.curve]
        assert precisions[0] <= precisions[-1] + 0.02

    def test_residual_vector_is_sparse(self, study):
        distribution = study.distribution
        # Most nodes carry small scores, few carry large ones, and the top
        # decile of nodes holds a disproportionate share of the mass — the
        # property the next-stage selection exploits.
        assert distribution.near_zero_fraction > distribution.large_score_fraction
        assert distribution.large_score_fraction < 0.25
        assert distribution.top_decile_mass_fraction > 0.25

    def test_precision_at_lookup(self, study):
        assert 0.0 <= study.precision_at(0.05) <= 1.0

    def test_more_ratio_means_more_tasks(self, study):
        tasks = [point.mean_next_stage_tasks for point in study.curve]
        assert tasks == sorted(tasks)

    def test_format(self, study):
        text = format_fig6(study)
        assert "Fig. 6" in text
        assert "%" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def study(self):
        return run_fig7(datasets=("G1", "G2"), ratios=(0.01, 0.1), num_seeds=3)

    def test_precision_rises_with_budget(self, study):
        for dataset in study.datasets():
            points = study.for_dataset(dataset)
            assert points[0].precision <= points[-1].precision + 0.05

    def test_speedup_falls_with_budget(self, study):
        for dataset in study.datasets():
            points = study.for_dataset(dataset)
            assert points[-1].fpga_speedup <= points[0].fpga_speedup * 1.2

    def test_fpga_faster_than_cpu_meloppr(self, study):
        for point in study.points:
            assert point.meloppr_fpga_seconds <= point.meloppr_cpu_seconds * 1.05

    def test_bfs_fraction_in_unit_interval(self, study):
        for point in study.points:
            assert 0.0 <= point.bfs_fraction <= 1.0

    def test_format(self, study):
        text = format_fig7(study)
        assert "Fig. 7" in text
        assert "speedup" in text


class TestQuantizationStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_quantization_study(num_seeds=3)

    def test_larger_scale_is_more_precise(self, study):
        rows = study.by_rule()
        assert rows["max"].mean_precision >= rows["average"].mean_precision - 0.02

    def test_max_scale_precision_high(self, study):
        assert study.by_rule()["max"].mean_precision > 0.85

    def test_loss_is_one_minus_precision(self, study):
        for row in study.rows:
            assert row.mean_precision_loss == pytest.approx(1.0 - row.mean_precision)

    def test_format(self, study):
        assert "Sec. V-A" in format_quantization(study)


class TestScoreTableStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_score_table_study(datasets=("G1",), factors=(2, 10), num_seeds=3)

    def test_larger_table_loses_less(self, study):
        assert study.loss_at(10) <= study.loss_at(2) + 1e-9

    def test_loss_small_at_paper_setting(self, study):
        assert study.loss_at(10) < 0.05

    def test_unknown_factor_raises(self, study):
        with pytest.raises(KeyError):
            study.loss_at(999)

    def test_format(self, study):
        assert "Sec. V-B" in format_score_table(study)


class TestStageSplitAblation:
    @pytest.fixture(scope="class")
    def study(self):
        return run_stage_split_ablation(
            dataset="G2", splits=((1, 5), (3, 3), (5, 1)), num_seeds=3
        )

    def test_all_splits_present(self, study):
        assert {row.stage_lengths for row in study.rows} == {(1, 5), (3, 3), (5, 1)}

    def test_large_l1_needs_more_memory(self, study):
        rows = {row.stage_lengths: row for row in study.rows}
        assert (
            rows[(5, 1)].mean_peak_subgraph_nodes
            >= rows[(3, 3)].mean_peak_subgraph_nodes
        )

    def test_helpers(self, study):
        assert study.best_precision().precision == max(r.precision for r in study.rows)
        assert study.smallest_memory().mean_peak_subgraph_nodes == min(
            r.mean_peak_subgraph_nodes for r in study.rows
        )

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            run_stage_split_ablation(splits=((2, 2),), num_seeds=2)

    def test_format(self, study):
        assert "Ablation" in format_stage_split(study)
