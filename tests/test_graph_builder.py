"""Tests for repro.graph.builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder


class TestAddEdges:
    def test_add_edge_chaining(self):
        graph = GraphBuilder(num_nodes=3).add_edge(0, 1).add_edge(1, 2).build()
        assert graph.num_edges == 2

    def test_add_edges_array(self):
        builder = GraphBuilder(num_nodes=4)
        builder.add_edges(np.array([[0, 1], [2, 3]]))
        assert builder.num_pending_edges == 2

    def test_add_edges_empty_iterable(self):
        builder = GraphBuilder(num_nodes=2)
        builder.add_edges([])
        assert builder.build().num_edges == 0

    def test_malformed_edges_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder(num_nodes=3).add_edges([(0, 1, 2)])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder(num_nodes=3).add_edges([(-1, 0)])

    def test_endpoint_beyond_declared_nodes_rejected(self):
        builder = GraphBuilder(num_nodes=2)
        builder.add_edge(0, 5)
        with pytest.raises(ValueError, match="exceed"):
            builder.build()


class TestConvenienceShapes:
    def test_add_star(self):
        graph = GraphBuilder(num_nodes=5).add_star(0, [1, 2, 3, 4]).build()
        assert graph.degree(0) == 4

    def test_add_star_empty_leaves(self):
        graph = GraphBuilder(num_nodes=3).add_star(0, []).build()
        assert graph.num_edges == 0

    def test_add_path(self):
        graph = GraphBuilder(num_nodes=4).add_path([0, 1, 2, 3]).build()
        assert graph.num_edges == 3
        assert graph.degree(0) == 1
        assert graph.degree(1) == 2

    def test_add_path_too_short_is_noop(self):
        graph = GraphBuilder(num_nodes=2).add_path([0]).build()
        assert graph.num_edges == 0

    def test_add_cycle(self):
        graph = GraphBuilder(num_nodes=4).add_cycle([0, 1, 2, 3]).build()
        assert graph.num_edges == 4
        assert all(graph.degree(node) == 2 for node in range(4))

    def test_add_cycle_too_short_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder(num_nodes=2).add_cycle([0, 1])


class TestBuildCleaning:
    def test_self_loops_removed(self):
        graph = GraphBuilder(num_nodes=3).add_edges([(0, 0), (1, 1), (0, 1)]).build()
        assert graph.num_edges == 1

    def test_duplicates_removed(self):
        graph = (
            GraphBuilder(num_nodes=3)
            .add_edges([(0, 1), (0, 1), (1, 0)])
            .build()
        )
        assert graph.num_edges == 1

    def test_undirected_symmetry(self):
        graph = GraphBuilder(num_nodes=3).add_edge(0, 2).build()
        assert graph.has_edge(2, 0)

    def test_directed_builder_keeps_direction(self):
        graph = GraphBuilder(num_nodes=3, directed=True).add_edge(0, 2).build()
        assert 2 in graph.neighbors(0)
        assert 0 not in graph.neighbors(2)

    def test_num_nodes_inferred(self):
        graph = GraphBuilder().add_edge(0, 9).build()
        assert graph.num_nodes == 10

    def test_empty_builder(self):
        graph = GraphBuilder().build()
        assert graph.num_nodes == 0

    def test_neighbor_lists_sorted(self):
        graph = GraphBuilder(num_nodes=5).add_edges([(0, 4), (0, 2), (0, 3)]).build()
        assert list(graph.neighbors(0)) == [2, 3, 4]

    def test_named_graph(self):
        graph = GraphBuilder(num_nodes=1).build(name="lonely")
        assert graph.name == "lonely"
