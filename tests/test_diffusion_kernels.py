"""Differential tests of the pluggable diffusion kernels.

Every registered kernel must be **bit-identical** to the ``reference``
``np.add.at`` implementation — same accumulated scores, same residual, same
propagation-work counter — across graph shapes, diffusion lengths and both
sparse (one-hot) and dense initial vectors.  ``np.array_equal`` is the
assertion everywhere; there is no tolerance.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import kernels as kernels_module
from repro.diffusion.diffusion import graph_diffusion, seed_vector
from repro.diffusion.kernels import (
    FrontierKernel,
    GraphStructure,
    NumbaKernel,
    available_kernels,
    make_kernel,
    register_kernel,
    resolve_kernel_name,
    structure_for,
)
from repro.diffusion.transition import TransitionOperator
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    stochastic_block_model,
    watts_strogatz_graph,
)
from repro.meloppr.fixed_point import FixedPointFormat, fixed_point_diffusion

NON_REFERENCE = tuple(name for name in available_kernels() if name != "reference")

GRAPH_CASES = [
    lambda: CSRGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)], name="triangle"),
    lambda: CSRGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)], name="fig1"),
    # Isolated node 5: its score must evaporate identically in every kernel.
    lambda: CSRGraph.from_edges(6, [(0, 1), (1, 2), (3, 4)], name="islands"),
    lambda: barabasi_albert_graph(120, 3, rng=7, name="ba120"),
    lambda: erdos_renyi_graph(80, 0.08, rng=11, name="er80"),
    lambda: watts_strogatz_graph(90, 4, 0.2, rng=13, name="ws90"),
    lambda: stochastic_block_model([40, 40], 0.15, 0.01, rng=19, name="sbm80"),
]


def _initial_vectors(num_nodes: int, rng: np.random.Generator):
    """One sparse (one-hot) and one dense initial vector per graph."""
    yield seed_vector(num_nodes, int(rng.integers(num_nodes)))
    dense = rng.random(num_nodes)
    yield dense / dense.sum()


class TestKernelDifferential:
    @pytest.mark.parametrize("make_graph", GRAPH_CASES)
    @pytest.mark.parametrize("kernel", NON_REFERENCE + ("auto",))
    def test_bit_identical_to_reference(self, make_graph, kernel):
        graph = make_graph()
        rng = np.random.default_rng(hash(graph.name) % (2**32))
        for initial in _initial_vectors(graph.num_nodes, rng):
            for length in range(0, 5):
                expected = graph_diffusion(graph, initial, length, 0.85, kernel="reference")
                result = graph_diffusion(graph, initial, length, 0.85, kernel=kernel)
                assert np.array_equal(result.accumulated, expected.accumulated)
                assert np.array_equal(result.residual, expected.residual)
                assert result.propagations == expected.propagations

    @pytest.mark.parametrize("kernel", NON_REFERENCE)
    def test_long_diffusion_stays_exact(self, kernel, small_ba_graph):
        """Length 12 drives the frontier dense — both regimes stay exact."""
        initial = seed_vector(small_ba_graph.num_nodes, 0)
        expected = graph_diffusion(small_ba_graph, initial, 12, 0.85, kernel="reference")
        result = graph_diffusion(small_ba_graph, initial, 12, 0.85, kernel=kernel)
        assert np.array_equal(result.accumulated, expected.accumulated)
        assert np.array_equal(result.residual, expected.residual)
        assert result.propagations == expected.propagations

    @pytest.mark.parametrize("kernel", NON_REFERENCE)
    def test_fixed_point_datapath_identical(self, kernel, small_citation_graph):
        fmt = FixedPointFormat.for_subgraph(0.85, small_citation_graph.num_nodes, 4.0)
        expected = fixed_point_diffusion(small_citation_graph, 5, 4, fmt, kernel="reference")
        result = fixed_point_diffusion(small_citation_graph, 5, 4, fmt, kernel=kernel)
        assert np.array_equal(result.accumulated_int, expected.accumulated_int)
        assert np.array_equal(result.residual_int, expected.residual_int)

    @settings(max_examples=30, deadline=None)
    @given(
        num_nodes=st.integers(min_value=2, max_value=40),
        edge_seed=st.integers(min_value=0, max_value=2**31),
        seed_node=st.integers(min_value=0, max_value=39),
        length=st.integers(min_value=0, max_value=4),
    )
    def test_property_random_graphs(self, num_nodes, edge_seed, seed_node, length):
        graph = erdos_renyi_graph(num_nodes, 0.2, rng=edge_seed, name="prop")
        initial = seed_vector(num_nodes, seed_node % num_nodes)
        expected = graph_diffusion(graph, initial, length, 0.85, kernel="reference")
        for kernel in NON_REFERENCE:
            result = graph_diffusion(graph, initial, length, 0.85, kernel=kernel)
            assert np.array_equal(result.accumulated, expected.accumulated)
            assert np.array_equal(result.residual, expected.residual)
            assert result.propagations == expected.propagations


class TestGraphStructure:
    def test_structure_is_shared_across_operators(self, small_ba_graph):
        first = structure_for(small_ba_graph)
        second = structure_for(small_ba_graph)
        assert first is second

    def test_rows_sorted_detected(self, small_ba_graph):
        assert structure_for(small_ba_graph).rows_sorted

    def test_unsorted_rows_fall_back_to_dense_path(self):
        # A hand-built CSR with descending neighbour lists: row 0 -> [2, 1].
        indptr = np.array([0, 2, 3, 4], dtype=np.int64)
        indices = np.array([2, 1, 0, 0], dtype=np.int64)
        structure = GraphStructure(indptr, indices)
        assert not structure.rows_sorted
        scores = np.array([1.0, 0.0, 0.0])
        reference = make_kernel("reference").apply(structure, scores)
        frontier = FrontierKernel().apply(structure, scores)
        assert np.array_equal(frontier, reference)

    def test_touched_counts_frontier_degrees(self, star_graph):
        structure = structure_for(star_graph)
        scores = np.zeros(star_graph.num_nodes)
        scores[0] = 1.0
        assert structure.touched(scores) == 6
        scores[1] = 0.5
        assert structure.touched(scores) == 7


class TestOperatorMemoization:
    def test_for_graph_memoizes_per_kernel(self, small_ba_graph):
        first = TransitionOperator.for_graph(small_ba_graph, "csr")
        second = TransitionOperator.for_graph(small_ba_graph, "csr")
        other = TransitionOperator.for_graph(small_ba_graph, "frontier")
        assert first is second
        assert first is not other

    def test_graph_diffusion_reuses_memoized_operator(self, small_ba_graph):
        initial = seed_vector(small_ba_graph.num_nodes, 1)
        graph_diffusion(small_ba_graph, initial, 2, 0.85, kernel="csr")
        assert small_ba_graph._operator_memo is not None
        assert "csr" in small_ba_graph._operator_memo

    def test_with_kernel_returns_sibling_operator(self, small_ba_graph):
        operator = TransitionOperator.for_graph(small_ba_graph, "reference")
        sibling = operator.with_kernel("frontier")
        assert sibling.kernel.name == "frontier"
        assert sibling is TransitionOperator.for_graph(small_ba_graph, "frontier")
        assert operator.with_kernel("reference") is operator

    def test_pickle_drops_operator_memo(self, small_ba_graph):
        TransitionOperator.for_graph(small_ba_graph, "csr")
        clone = pickle.loads(pickle.dumps(small_ba_graph))
        assert clone._operator_memo is None
        assert clone == small_ba_graph
        # And the clone can build (and memoize) fresh operators.
        operator = TransitionOperator.for_graph(clone, "frontier")
        assert operator.kernel.name == "frontier"


class TestRegistry:
    def test_available_kernels_lists_builtins(self):
        names = available_kernels()
        for expected in ("reference", "csr", "frontier", "numba"):
            assert expected in names

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown diffusion kernel"):
            resolve_kernel_name("does-not-exist")

    def test_auto_resolves_to_concrete_kernel(self):
        assert resolve_kernel_name("auto") in available_kernels()
        assert resolve_kernel_name(None) in available_kernels()

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(kernels_module.KERNEL_ENV_VAR, "csr")
        assert resolve_kernel_name(None) == "csr"

    def test_make_kernel_returns_singletons(self):
        assert make_kernel("frontier") is make_kernel("frontier")

    def test_kernel_instance_passes_through(self):
        kernel = FrontierKernel(dense_fraction=0.5)
        assert make_kernel(kernel) is kernel
        assert resolve_kernel_name(kernel) == "frontier"

    def test_register_rejects_duplicates_and_reserved_names(self):
        with pytest.raises(ValueError):
            register_kernel("reference", lambda: None)
        with pytest.raises(ValueError):
            register_kernel("auto", lambda: None)

    def test_register_replace_and_cleanup(self):
        register_kernel("test-kernel", FrontierKernel, replace=True)
        try:
            assert "test-kernel" in available_kernels()
            assert isinstance(make_kernel("test-kernel"), FrontierKernel)
        finally:
            with kernels_module._registry_lock:
                kernels_module._registry.pop("test-kernel", None)
                kernels_module._instances.pop("test-kernel", None)


class TestNumbaFallback:
    @pytest.fixture
    def broken_numba(self, monkeypatch):
        """Force the numba import to fail and reset the probe memo."""

        def boom():
            raise ImportError("numba is not installed")

        monkeypatch.setattr(kernels_module, "_import_numba", boom)
        monkeypatch.setattr(kernels_module, "_numba_probe", None)
        yield
        monkeypatch.setattr(kernels_module, "_numba_probe", None)

    def test_import_failure_falls_back(self, broken_numba, small_ba_graph):
        kernel = NumbaKernel()
        assert not kernel.jit_enabled
        initial = seed_vector(small_ba_graph.num_nodes, 3)
        expected = graph_diffusion(small_ba_graph, initial, 3, 0.85, kernel="reference")
        result = graph_diffusion(small_ba_graph, initial, 3, 0.85, kernel=kernel)
        assert np.array_equal(result.accumulated, expected.accumulated)
        assert np.array_equal(result.residual, expected.residual)
        assert result.propagations == expected.propagations

    def test_auto_skips_numba_when_unavailable(self, broken_numba, monkeypatch):
        monkeypatch.setenv(kernels_module.NUMBA_ENV_VAR, "1")
        assert resolve_kernel_name("auto") == "frontier"

    def test_numba_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(kernels_module.NUMBA_ENV_VAR, raising=False)
        assert not kernels_module.numba_enabled()
        assert resolve_kernel_name("auto") == "frontier"
