"""Tests for repro.utils.timing."""

from __future__ import annotations

import pytest

from repro.utils.timing import Stopwatch, TimingBreakdown


class TestStopwatch:
    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_measures_non_negative_time(self):
        watch = Stopwatch()
        watch.start()
        assert watch.stop() >= 0.0

    def test_accumulates_over_restarts(self):
        watch = Stopwatch()
        watch.start()
        first = watch.stop()
        watch.start()
        second = watch.stop()
        assert second >= first

    def test_reset_clears_elapsed(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0

    def test_elapsed_while_running(self):
        watch = Stopwatch().start()
        assert watch.elapsed >= 0.0


class TestTimingBreakdown:
    def test_add_and_total(self):
        breakdown = TimingBreakdown()
        breakdown.add("bfs", 0.5)
        breakdown.add("diffusion", 1.5)
        assert breakdown.total == pytest.approx(2.0)

    def test_add_accumulates_same_bucket(self):
        breakdown = TimingBreakdown()
        breakdown.add("bfs", 0.5)
        breakdown.add("bfs", 0.25)
        assert breakdown.seconds["bfs"] == pytest.approx(0.75)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimingBreakdown().add("bfs", -1.0)

    def test_fraction(self):
        breakdown = TimingBreakdown({"bfs": 1.0, "diffusion": 3.0})
        assert breakdown.fraction("bfs") == pytest.approx(0.25)

    def test_fraction_empty_is_zero(self):
        assert TimingBreakdown().fraction("bfs") == 0.0

    def test_measure_context_manager(self):
        breakdown = TimingBreakdown()
        with breakdown.measure("work"):
            sum(range(100))
        assert breakdown.seconds["work"] >= 0.0

    def test_measure_records_on_exception(self):
        breakdown = TimingBreakdown()
        with pytest.raises(RuntimeError):
            with breakdown.measure("work"):
                raise RuntimeError("boom")
        assert "work" in breakdown.seconds

    def test_merge_is_bucketwise_sum(self):
        a = TimingBreakdown({"bfs": 1.0})
        b = TimingBreakdown({"bfs": 2.0, "diffusion": 1.0})
        merged = a.merge(b)
        assert merged.seconds == {"bfs": 3.0, "diffusion": 1.0}
        # Originals untouched.
        assert a.seconds == {"bfs": 1.0}
