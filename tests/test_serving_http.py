"""Tests for the HTTP/JSON front door, its /metrics endpoint and live ops.

Everything runs against a real socket on an ephemeral localhost port: the
differential round-trip (HTTP answers identical to the in-process engine),
status-code mapping for shed/deadline/bad-request, the Prometheus
exposition (scraped and parsed in-test), graceful drain with zero in-flight
drops, and hot config reload under traffic.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.diffusion.sparse_vector import SparseScoreVector
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.serving import QueryEngine, SubgraphCache
from repro.serving.frontend import (
    AdmissionController,
    AsyncQueryServer,
    BatchPolicy,
    HttpClient,
    HttpClientPool,
    HttpQueryServer,
    MicroBatcher,
    parse_prometheus_text,
)
from repro.serving.result_cache import ScoreTableCache


@pytest.fixture()
def config():
    return MeLoPPRConfig(stage_lengths=(3, 3), track_memory=False)


class SleepySolver(PPRSolver):
    """Stub solver with a fixed service time (forces queueing)."""

    name = "sleepy"

    def __init__(self, graph, delay_seconds: float) -> None:
        super().__init__(graph)
        self.delay_seconds = delay_seconds

    def solve(self, query: PPRQuery) -> PPRResult:
        time.sleep(self.delay_seconds)
        return PPRResult(query=query, scores=SparseScoreVector({query.seed: 1.0}))


def serve_http(engine, policy=None, admission=None, **server_kwargs):
    """Async context manager: batcher + HTTP server + connected client."""

    class _Stack:
        async def __aenter__(self):
            self.batcher = MicroBatcher(engine, policy, admission)
            await self.batcher.start()
            self.server = HttpQueryServer(self.batcher, **server_kwargs)
            host, port = await self.server.start()
            self.client = await HttpClient(host, port).connect()
            return self.client, self.server

        async def __aexit__(self, exc_type, exc, traceback):
            await self.client.close()
            await self.server.stop()
            await self.batcher.stop()

    return _Stack()


class TestHttpRoundTrip:
    def test_http_answers_match_engine(self, small_ba_graph, config):
        queries = [PPRQuery(seed=s, k=30) for s in (3, 11, 27, 3, 11)]
        with QueryEngine(MeLoPPRSolver(small_ba_graph, config)) as reference:
            expected = [
                [[int(n), float(s)] for n, s in result.top_k()]
                for result in reference.solve_batch(queries)
            ]

        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph, config), cache=SubgraphCache()
        )

        async def run():
            async with serve_http(engine) as (_, server):
                host, port = server.address
                async with HttpClientPool(host, port, size=4) as pool:
                    return await asyncio.gather(
                        *(
                            pool.query({"seed": q.seed, "k": q.k})
                            for q in queries
                        )
                    )

        with engine:
            responses = asyncio.run(run())
        assert [status for status, _ in responses] == [200] * len(queries)
        assert [body["top"] for _, body in responses] == expected

    def test_query_response_shape(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve_http(engine) as (client, _):
                return await client.query({"id": "q1", "seed": 3, "k": 10})

        with engine:
            status, body = asyncio.run(run())
        assert status == 200
        assert body["ok"] is True
        assert body["id"] == "q1"
        assert body["seed"] == 3
        assert body["k"] == 10
        assert body["latency_ms"] >= 0
        assert len(body["top"]) <= 10
        assert all(len(pair) == 2 for pair in body["top"])

    def test_healthz_and_stats(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve_http(engine) as (client, _):
                health = await client.request_json("GET", "/healthz")
                await client.query({"seed": 3, "k": 10})
                stats = await client.request_json("GET", "/stats")
                return health, stats

        with engine:
            (health_status, health), (stats_status, stats) = asyncio.run(run())
        assert health_status == 200 and health["status"] == "serving"
        assert stats_status == 200
        assert stats["admission"]["completed"] == 1
        assert stats["engine"]["queries_served"] == 1

    def test_keep_alive_serves_sequential_requests(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve_http(engine) as (client, _):
                first = await client.query({"seed": 1, "k": 5})
                second = await client.query({"seed": 2, "k": 5})
                return first, second

        with engine:
            (s1, b1), (s2, b2) = asyncio.run(run())
        assert s1 == s2 == 200
        assert b1["seed"] == 1 and b2["seed"] == 2

    def test_connection_close_is_honoured(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve_http(engine) as (client, _):
                status, headers, _ = await client.request(
                    "GET", "/healthz", headers={"Connection": "close"}
                )
                assert headers["connection"] == "close"
                # The client auto-closed; the next request reconnects.
                status2, _ = await client.request_json("GET", "/healthz")
                return status, status2

        with engine:
            status, status2 = asyncio.run(run())
        assert status == 200 and status2 == 200


class TestHttpStatusMapping:
    def test_shed_is_429(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.05))
        admission = AdmissionController(max_pending=2)
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0)

        async def run():
            async with serve_http(engine, policy, admission) as (_, server):
                host, port = server.address
                async with HttpClientPool(host, port, size=12) as pool:
                    return await asyncio.gather(
                        *(pool.query({"seed": s % 5, "k": 10}) for s in range(12))
                    )

        with engine:
            responses = asyncio.run(run())
        statuses = [status for status, _ in responses]
        assert statuses.count(200) + statuses.count(429) == 12
        assert 429 in statuses, "overload must produce explicit 429s"
        assert 200 in statuses, "admitted queries must still be answered"
        shed_bodies = [body for status, body in responses if status == 429]
        assert all(body["error"] == "shed" for body in shed_bodies)

    def test_deadline_is_504(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.1))
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0)

        async def run():
            async with serve_http(engine, policy) as (_, server):
                host, port = server.address
                async with HttpClientPool(host, port, size=2) as pool:
                    blocker = asyncio.ensure_future(
                        pool.query({"seed": 1, "k": 10})
                    )
                    await asyncio.sleep(0.02)
                    doomed = await pool.query(
                        {"seed": 2, "k": 10, "timeout_ms": 5.0}
                    )
                    await blocker
                    return doomed

        with engine:
            status, body = asyncio.run(run())
        assert status == 504
        assert body["error"] == "deadline"

    def test_bad_request_is_400(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve_http(engine) as (client, _):
                return await client.query({"seed": 10_000, "k": 10})

        with engine:
            status, body = asyncio.run(run())
        assert status == 400
        assert body["error"] == "bad_request"


class TestMetricsEndpoint:
    def test_metrics_is_valid_prometheus_and_counts_match(
        self, small_ba_graph, config
    ):
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph, config),
            cache=SubgraphCache(),
            result_cache=ScoreTableCache(),
        )

        async def run():
            async with serve_http(engine) as (client, _):
                for seed in (3, 3, 7, 3):
                    status, _ = await client.query({"seed": seed, "k": 10})
                    assert status == 200
                status, headers, raw = await client.request("GET", "/metrics")
                return status, headers, raw

        with engine:
            status, headers, raw = asyncio.run(run())
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        scrape = parse_prometheus_text(raw.decode("utf-8"))

        # Outcome ledger.
        assert scrape.value("repro_queries_offered_total") == 4
        assert scrape.value("repro_queries_completed_total") == 4
        assert scrape.value("repro_queries_shed_total") == 0
        assert scrape.value("repro_queries_deadline_expired_total") == 0
        assert scrape.value("repro_server_draining") == 0

        # Latency summary: quantiles present and ordered, sum/count coherent.
        p50 = scrape.value("repro_request_latency_seconds", quantile="0.5")
        p95 = scrape.value("repro_request_latency_seconds", quantile="0.95")
        p99 = scrape.value("repro_request_latency_seconds", quantile="0.99")
        assert 0 < p50 <= p95 <= p99
        assert scrape.value("repro_request_latency_seconds_count") == 4
        assert scrape.value("repro_request_latency_seconds_sum") > 0

        # Cache tiers: combined = subgraph + result, counter-wise, and the
        # hot seed (3 queried three times) produced result-cache hits.
        for family in ("repro_cache_hits_total", "repro_cache_misses_total"):
            combined = scrape.value(family, cache="combined")
            subgraph = scrape.value(family, cache="subgraph")
            result = scrape.value(family, cache="result")
            assert combined == subgraph + result
        assert scrape.value("repro_cache_hits_total", cache="result") >= 2
        for tier in ("combined", "subgraph", "result"):
            ratio = scrape.value("repro_cache_hit_ratio", cache=tier)
            assert 0.0 <= ratio <= 1.0

        # Engine families.
        assert scrape.value("repro_engine_queries_served_total") == 4
        assert scrape.types["repro_queries_completed_total"] == "counter"
        assert scrape.types["repro_request_latency_seconds"] == "summary"

    def test_metrics_reflects_shed_and_draining(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.05))
        admission = AdmissionController(max_pending=1)
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0)

        async def run():
            async with serve_http(engine, policy, admission) as (_, server):
                host, port = server.address
                async with HttpClientPool(host, port, size=6) as pool:
                    responses = await asyncio.gather(
                        *(pool.query({"seed": s, "k": 5}) for s in range(6))
                    )
                    shed = sum(1 for status, _ in responses if status == 429)
                    status, _, raw = await pool._clients[0].request(
                        "GET", "/metrics"
                    )
                    return shed, raw.decode("utf-8")

        with engine:
            shed, exposition = asyncio.run(run())
        assert shed > 0
        scrape = parse_prometheus_text(exposition)
        assert scrape.value("repro_queries_shed_total") == shed


class TestGracefulDrain:
    def test_drain_completes_every_inflight_query(self, small_ba_graph):
        """The drain contract: zero admitted queries dropped."""
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.1))
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0)

        async def run():
            batcher = MicroBatcher(engine, policy)
            await batcher.start()
            server = HttpQueryServer(batcher)
            host, port = await server.start()
            slow_client = await HttpClient(host, port).connect()
            admin_client = await HttpClient(host, port).connect()
            try:
                # A slow query is in flight when the drain begins.
                inflight = asyncio.ensure_future(
                    slow_client.query({"seed": 1, "k": 5})
                )
                await asyncio.sleep(0.02)
                status, body = await admin_client.request_json(
                    "POST", "/admin/drain"
                )
                assert status == 202 and body["draining"] is True
                # The in-flight query still completes with its answer.
                answer_status, answer = await inflight
                assert answer_status == 200
                assert answer["ok"] is True and answer["seed"] == 1
                await server.drain()  # wait for full completion
                assert server.draining
                # New connections are refused: the listener is closed.
                with pytest.raises(OSError):
                    await HttpClient(host, port).connect()
            finally:
                await slow_client.close()
                await admin_client.close()
                await server.drain()
                await batcher.stop()

        with engine:
            asyncio.run(run())

    def test_healthz_reports_draining(self, small_ba_graph, config):
        """Once the drain begins, the health check flips to 503/draining.

        Checked at the routing layer: over the wire an *idle* keep-alive
        connection is closed the moment the drain starts (by design), so a
        request only observes the 503 in the race window where its bytes
        were already received — not something a test can time reliably.
        """
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with MicroBatcher(engine) as batcher:
                server = HttpQueryServer(batcher)
                await server.start()
                status, body, _ = await server._route("GET", "/healthz", b"", 0.0)
                assert status == 200 and body["status"] == "serving"
                await server.drain()
                status, body, _ = await server._route("GET", "/healthz", b"", 0.0)
                assert status == 503
                assert body["status"] == "draining"

        with engine:
            asyncio.run(run())

    def test_drain_closes_idle_keepalive_connections(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with MicroBatcher(engine) as batcher:
                server = HttpQueryServer(batcher)
                host, port = await server.start()
                idle = await HttpClient(host, port).connect()
                try:
                    status, _ = await idle.request_json("GET", "/healthz")
                    assert status == 200
                    await server.drain()
                    # The idle connection was closed by the server; the next
                    # request on it fails rather than hanging forever.
                    with pytest.raises((ConnectionError, OSError)):
                        await asyncio.wait_for(
                            idle.request_json("GET", "/healthz"), timeout=5
                        )
                finally:
                    await idle.close()

        with engine:
            asyncio.run(run())

    def test_drain_is_idempotent_and_safe_unstarted(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            batcher = MicroBatcher(engine)
            await batcher.start()
            # Unstarted server: drain is a no-op, not a crash.
            unstarted = HttpQueryServer(batcher)
            await unstarted.drain()
            server = HttpQueryServer(batcher)
            await server.start()
            await server.drain()
            await server.drain()  # idempotent
            await batcher.stop()

        with engine:
            asyncio.run(run())


class TestHotReload:
    def test_reload_applies_without_dropping_queries(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.05))
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0)

        async def run():
            async with serve_http(engine, policy) as (client, server):
                host, port = server.address
                slow_client = await HttpClient(host, port).connect()
                try:
                    inflight = asyncio.ensure_future(
                        slow_client.query({"seed": 1, "k": 5})
                    )
                    await asyncio.sleep(0.01)
                    status, body = await client.request_json(
                        "POST",
                        "/admin/reload",
                        {"max_pending": 99, "max_batch_size": 16,
                         "max_wait_ms": 3.5, "dedup": False},
                    )
                    inflight_status, inflight_body = await inflight
                    return status, body, inflight_status, inflight_body, server
                finally:
                    await slow_client.close()

        with engine:
            status, body, inflight_status, inflight_body, server = asyncio.run(run())
        assert status == 200 and body["ok"] is True
        assert sorted(body["applied"]) == [
            "dedup", "max_batch_size", "max_pending", "max_wait_ms",
        ]
        assert body["config"]["max_pending"] == 99
        assert body["config"]["max_batch_size"] == 16
        assert body["config"]["max_wait_ms"] == 3.5
        assert body["config"]["dedup"] is False
        # The query in flight across the reload was not dropped.
        assert inflight_status == 200 and inflight_body["ok"] is True
        # And the live objects reflect the new configuration.
        assert server.batcher.policy.max_batch_size == 16
        assert server.batcher.admission.max_pending == 99

    def test_reload_resizes_caches_and_reports_evictions(
        self, small_ba_graph, config
    ):
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph, config),
            cache=SubgraphCache(),
            result_cache=ScoreTableCache(),
        )

        async def run():
            async with serve_http(engine) as (client, _):
                for seed in (3, 7, 11, 19):
                    status, _ = await client.query({"seed": seed, "k": 10})
                    assert status == 200
                return await client.request_json(
                    "POST",
                    "/admin/reload",
                    {"cache_bytes": 1024, "result_cache_bytes": 1024},
                )

        with engine:
            status, body = asyncio.run(run())
        assert status == 200
        assert body["evicted"]["cache"] >= 1
        assert body["evicted"]["result_cache"] >= 1
        assert engine.cache.max_bytes == 1024
        assert engine.result_cache.max_bytes == 1024
        assert engine.cache.stats.current_bytes <= 1024

    def test_bad_reload_is_rejected_wholesale(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve_http(engine) as (client, server):
                before = server.batcher.admission.max_pending
                # One bad field: nothing applies (all-or-nothing).
                status, body = await client.request_json(
                    "POST",
                    "/admin/reload",
                    {"max_pending": 77, "max_batch_size": -1},
                )
                after = server.batcher.admission.max_pending
                return status, body, before, after

        with engine:
            status, body, before, after = asyncio.run(run())
        assert status == 400
        assert body["error"] == "bad_request"
        assert "max_batch_size" in body["message"]
        assert after == before


class TestServerValidation:
    def test_rejects_nonpositive_max_body_bytes(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        with pytest.raises(ValueError, match="max_body_bytes"):
            HttpQueryServer(MicroBatcher(engine), max_body_bytes=0)
        engine.close()

    def test_address_before_start_raises(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        server = HttpQueryServer(MicroBatcher(engine))
        with pytest.raises(RuntimeError, match="not started"):
            server.address
        engine.close()

    def test_double_start_raises_and_stop_is_idempotent(
        self, small_ba_graph, config
    ):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            batcher = MicroBatcher(engine)
            await batcher.start()
            server = HttpQueryServer(batcher)
            await server.start()
            with pytest.raises(RuntimeError, match="already started"):
                await server.start()
            await server.stop()
            await server.stop()  # idempotent
            await batcher.stop()

        with engine:
            asyncio.run(run())


class TestSharedBatcherAcrossTransports:
    def test_tcp_and_http_serve_one_batcher(self, small_ba_graph, config):
        """Both front doors share admission, batching and caches."""
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph, config), cache=SubgraphCache()
        )

        async def run():
            from repro.serving.frontend import AsyncClient

            async with MicroBatcher(engine) as batcher:
                tcp_server = AsyncQueryServer(batcher)
                http_server = HttpQueryServer(batcher)
                tcp_host, tcp_port = await tcp_server.start()
                http_host, http_port = await http_server.start()
                try:
                    tcp_client = await AsyncClient.connect(tcp_host, tcp_port)
                    async with HttpClient(http_host, http_port) as http_client:
                        tcp_answer = await tcp_client.solve(seed=3, k=10)
                        status, http_answer = await http_client.query(
                            {"seed": 3, "k": 10}
                        )
                    await tcp_client.close()
                    stats = batcher.stats()
                    return tcp_answer, status, http_answer, stats
                finally:
                    await tcp_server.stop()
                    await http_server.stop()

        with engine:
            tcp_answer, status, http_answer, stats = asyncio.run(run())
        assert status == 200
        assert [[n, s] for n, s in tcp_answer] == http_answer["top"]
        # One admission ledger across both transports.
        assert stats.admission.completed == 2
        # The second query hit the sub-graph cache warmed by the first.
        assert stats.engine.cache.hits > 0


class TestAdminUpdate:
    def test_update_applies_and_serves_new_topology(self, small_ba_graph, config):
        from repro.graph.csr import CSRGraph

        u, v = 0, int(small_ba_graph.neighbors(0)[0])
        canonical = (min(u, v), max(u, v))
        remaining = [
            edge for edge in small_ba_graph.iter_edges() if edge != canonical
        ]
        rebuilt = CSRGraph.from_edges(small_ba_graph.num_nodes, remaining)
        expected = [
            [int(n), float(s)]
            for n, s in MeLoPPRSolver(rebuilt, config)
            .solve(PPRQuery(seed=3, k=20))
            .top_k()
        ]
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph, config), cache=SubgraphCache()
        )

        async def run():
            async with serve_http(engine) as (client, _):
                await client.query({"seed": 3, "k": 20})  # warm the old graph
                status, body = await client.request_json(
                    "POST",
                    "/admin/update",
                    {"ops": [{"op": "delete", "u": u, "v": v}]},
                )
                answer_status, answer = await client.query({"seed": 3, "k": 20})
                return status, body, answer_status, answer

        with engine:
            status, body, answer_status, answer = asyncio.run(run())
        assert status == 200 and body["ok"] is True
        assert body["ops"] == 1
        assert body["new_fingerprint"] == rebuilt.fingerprint()
        assert body["invalidated"]["subgraph_entries_dropped"] >= 0
        # Post-update answers come from the new topology.
        assert answer_status == 200
        assert answer["top"] == expected

    def test_bad_update_is_400_and_changes_nothing(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        fingerprint = small_ba_graph.fingerprint()

        async def run():
            async with serve_http(engine) as (client, _):
                non_array = await client.request_json(
                    "POST", "/admin/update", {"ops": {"op": "insert"}}
                )
                out_of_range = await client.request_json(
                    "POST",
                    "/admin/update",
                    {"ops": [["insert", 0, 10**9]]},
                )
                empty = await client.request_json("POST", "/admin/update", {})
                return non_array, out_of_range, empty

        with engine:
            non_array, out_of_range, empty = asyncio.run(run())
        for status, body in (non_array, out_of_range, empty):
            assert status == 400
            assert body["ok"] is False and body["error"] == "bad_request"
        assert "JSON array" in non_array[1]["message"]
        assert engine.solver.graph.fingerprint() == fingerprint

    def test_update_requires_post(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve_http(engine) as (client, _):
                return await client.request_json("GET", "/admin/update", None)

        with engine:
            status, body = asyncio.run(run())
        assert status == 405
