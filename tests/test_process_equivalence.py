"""Differential correctness: process-pool serving is bit-identical to serial.

The process backend promises that moving stage tasks into worker processes
(over shared-memory graph buffers) is a pure performance choice: every score
must equal — bitwise, no tolerance — what the serial in-process path
produces, with and without sharding, with worker caches on or off.  The grid
covers those axes on a fixed graph; hypothesis drives random query mixes
through one long-lived pool (workers persist across examples, exactly like a
long-lived server).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.generators import barabasi_albert_graph
from repro.graph.partition import partition_graph
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving import ProcessPoolBackend, QueryEngine, ShardRouter


def exact_scores(results):
    """Per-query score dicts for bitwise comparison (no tolerance)."""
    return [dict(result.scores.items()) for result in results]


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(180, 2, rng=7, name="ba180-diff")


@pytest.fixture(scope="module")
def queries(graph):
    seeds = [0, 7, 63, 7, 120, 0]
    # Mixed lengths exercise one-stage, degenerate and multi-stage plans.
    return [
        PPRQuery(seed=seed, k=30, alpha=0.85, length=length)
        for seed, length in zip(seeds, (6, 6, 3, 1, 0, 6))
    ]


@pytest.fixture(scope="module")
def reference(graph, queries):
    solver = MeLoPPRSolver(graph)
    return exact_scores([solver.solve(query) for query in queries])


class TestUnshardedGrid:
    @pytest.mark.parametrize("num_workers", [1, 2, 3])
    @pytest.mark.parametrize("cached", [False, True], ids=["cold", "cached"])
    def test_bit_identical_scores(self, graph, queries, reference, num_workers, cached):
        backend = ProcessPoolBackend(
            num_workers=num_workers, cache_bytes=(32 << 20) if cached else None
        )
        with QueryEngine(MeLoPPRSolver(graph), backend=backend) as engine:
            results = engine.solve_batch(queries)
            stats = engine.stats()
        assert exact_scores(results) == reference
        assert stats.backend == "process-pool"
        assert stats.queries_served == len(queries)
        for result in results:
            serving = result.metadata["serving"]
            assert serving["backend"] == "process-pool"
            assert serving["remote_tasks"] is True
            assert serving["cache_enabled"] is cached

    def test_repeated_batches_reuse_workers(self, graph, queries, reference):
        backend = ProcessPoolBackend(num_workers=2)
        with QueryEngine(MeLoPPRSolver(graph), backend=backend) as engine:
            first = engine.solve_batch(queries)
            workers = list(backend._workers)
            second = engine.solve_batch(queries)
            assert backend._workers == workers  # persistent pool, no respawn
        assert exact_scores(first) == reference
        assert exact_scores(second) == reference


class TestShardedGrid:
    @pytest.mark.parametrize("strategy", ["hash", "range", "degree"])
    @pytest.mark.parametrize("num_shards", [2, 5])
    def test_bit_identical_scores(self, graph, queries, reference, strategy, num_shards):
        partition = partition_graph(graph, num_shards, strategy=strategy, halo_depth=3)
        router = ShardRouter(partition)
        backend = ProcessPoolBackend(num_workers=2)
        with QueryEngine(MeLoPPRSolver(graph), backend=backend, router=router) as engine:
            results = engine.solve_batch(queries)
            stats = engine.stats()
        assert exact_scores(results) == reference
        assert stats.router is not None
        for result in results:
            assert result.metadata["serving"]["sharded"] is True

    def test_fallback_beyond_halo_bit_identical(self, graph, queries, reference):
        # halo 1 < stage length 3: every deep extraction is proxied to the
        # parent (router fallback cache) while workers stay idle — answers
        # still must not move.
        partition = partition_graph(graph, 3, strategy="hash", halo_depth=1)
        router = ShardRouter(partition)
        backend = ProcessPoolBackend(num_workers=2)
        with QueryEngine(MeLoPPRSolver(graph), backend=backend, router=router) as engine:
            results = engine.solve_batch(queries)
            stats = engine.stats()
        assert exact_scores(results) == reference
        assert stats.router.fallback_extractions > 0
        assert stats.router.fallback_rate == 1.0

    def test_mixed_local_and_fallback_depths(self, graph):
        # halo 2 serves length<=2 tasks shard-locally; length-3 stages fall
        # back — one batch exercises both executors side by side.
        partition = partition_graph(graph, 2, strategy="range", halo_depth=2)
        router = ShardRouter(partition)
        backend = ProcessPoolBackend(num_workers=2)
        queries = [
            PPRQuery(seed=seed, k=25, length=length)
            for seed, length in ((3, 4), (90, 6), (3, 2))
        ]
        solver = MeLoPPRSolver(graph)
        expected = exact_scores([solver.solve(query) for query in queries])
        with QueryEngine(MeLoPPRSolver(graph), backend=backend, router=router) as engine:
            results = engine.solve_batch(queries)
            stats = engine.stats()
        assert exact_scores(results) == expected
        assert stats.router.fallback_extractions > 0


class TestPropertyBased:
    """Random query mixes through one long-lived pool (fork once per module)."""

    @pytest.fixture(scope="class")
    def served(self, graph):
        backend = ProcessPoolBackend(num_workers=2)
        engine = QueryEngine(MeLoPPRSolver(graph), backend=backend)
        yield engine
        engine.close()

    @pytest.fixture(scope="class")
    def serial_solver(self, graph):
        return MeLoPPRSolver(graph)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_random_query_mixes_bit_identical(self, served, serial_solver, graph, data):
        seeds = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=graph.num_nodes - 1),
                min_size=1,
                max_size=5,
            )
        )
        length = data.draw(st.sampled_from([0, 1, 2, 4, 6]))
        alpha = data.draw(st.sampled_from([0.5, 0.85, 0.99]))
        k = data.draw(st.integers(min_value=1, max_value=40))
        queries = [
            PPRQuery(seed=seed, k=k, alpha=alpha, length=length) for seed in seeds
        ]
        expected = exact_scores([serial_solver.solve(query) for query in queries])
        assert exact_scores(served.solve_batch(queries)) == expected
