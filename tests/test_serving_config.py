"""``ServingConfig``: the one config surface behind every server CLI.

The contract that matters is the round-trip: a config must survive
``to_argv()`` → ``build_parser().parse_args()`` → ``from_args()``
unchanged, because that exact path is how the replica supervisor hands
a config to its subprocesses.
"""

import dataclasses

import pytest

from repro.serving.engine import QueryEngine
from repro.serving.frontend.config import (
    ServingConfig,
    build_frontend,
    build_serving_parser,
)
from repro.serving.frontend.server import build_parser
from repro.serving.sharding import ShardRouter


class TestRoundTrip:
    def test_default_config_round_trips(self):
        config = ServingConfig()
        args = build_parser().parse_args(config.to_argv())
        assert ServingConfig.from_args(args) == config

    def test_non_default_config_round_trips(self):
        config = ServingConfig(
            dataset="G2",
            host="0.0.0.0",
            port=9999,
            backend="thread:3",
            max_batch=16,
            max_wait_ms=7.5,
            dedup=False,
            max_pending=32,
            no_cache=True,
            result_cache_bytes=1234,
            result_cache_ttl=2.5,
            kernel="csr",
            num_shards=8,
            partition="hash",
            halo_depth=2,
            record="/tmp/trace.jsonl",
            trace_sample=0.25,
            trace_ring=64,
            slow_ms=10.0,
            slow_log="/tmp/slow.jsonl",
            log_level="debug",
            log_json=True,
            ready_file="/tmp/ready.json",
        )
        args = build_parser().parse_args(config.to_argv())
        assert ServingConfig.from_args(args) == config

    def test_both_parsers_share_the_flag_surface(self):
        # The TCP and HTTP CLIs differ only in their default port.
        tcp = build_parser().parse_args([])
        http = build_serving_parser("http", default_port=7080).parse_args([])
        assert tcp.port == 7071
        assert http.port == 7080
        tcp_cfg = ServingConfig.from_args(tcp)
        http_cfg = ServingConfig.from_args(http)
        assert tcp_cfg.replace(port=0) == http_cfg.replace(port=0)

    def test_replace_returns_new_frozen_config(self):
        config = ServingConfig()
        other = config.replace(num_shards=4)
        assert other.num_shards == 4 and config.num_shards == 0
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.num_shards = 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(num_shards=-1)
        with pytest.raises(ValueError):
            ServingConfig(num_shards=2, partition="nope")


class TestBuildFrontend:
    def test_unsharded_build(self):
        config = ServingConfig(dataset="G1", backend="serial")
        engine, policy, admission = build_frontend(config)
        try:
            assert isinstance(engine, QueryEngine)
            assert engine.router is None
            assert policy.max_batch_size == config.max_batch
            assert admission.max_pending == config.max_pending
        finally:
            engine.close()

    def test_sharded_build_gets_a_router(self):
        config = ServingConfig(
            dataset="G1", backend="serial", num_shards=4, halo_depth=2
        )
        engine, _, _ = build_frontend(config)
        try:
            assert isinstance(engine.router, ShardRouter)
            assert engine.router.partition.num_shards == 4
        finally:
            engine.close()

    def test_namespace_and_config_build_identically(self):
        # server.build_frontend accepts the old argparse Namespace and
        # the new ServingConfig; both paths must configure alike.
        from repro.serving.frontend.server import (
            build_frontend as server_build_frontend,
        )

        config = ServingConfig(dataset="G1", backend="serial", max_batch=4)
        args = build_parser().parse_args(config.to_argv())
        from_ns, _, _ = server_build_frontend(args)
        from_cfg, _, _ = server_build_frontend(config)
        try:
            assert from_ns.backend.name == from_cfg.backend.name
            assert (
                from_ns.solver.graph.name == from_cfg.solver.graph.name
            )
        finally:
            from_ns.close()
            from_cfg.close()

    def test_tracer_enabled_by_sample_rate(self):
        config = ServingConfig(
            dataset="G1", backend="serial", trace_sample=0.5, trace_ring=16
        )
        engine, _, _ = build_frontend(config)
        try:
            assert engine.tracer is not None
            assert engine.tracer.sample_rate == 0.5
        finally:
            engine.close()
