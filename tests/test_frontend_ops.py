"""Tests for the transport-agnostic live ops: hot reload and its plumbing.

:func:`apply_reload` is the single validation/application path behind both
``POST /admin/reload`` and the TCP ``reload`` op; these tests pin its
all-or-nothing contract and the live-object plumbing it relies on
(``AdmissionController.set_max_pending``, ``MicroBatcher.set_policy``,
cache ``resize``).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving import QueryEngine, SubgraphCache, Tracer
from repro.serving.frontend import (
    AdmissionController,
    BatchPolicy,
    MicroBatcher,
    RELOADABLE_KEYS,
    apply_reload,
    frontend_config,
)
from repro.serving.result_cache import ScoreTableCache


@pytest.fixture()
def config():
    return MeLoPPRConfig(stage_lengths=(3, 3), track_memory=False)


def make_batcher(small_ba_graph, config, **engine_kwargs):
    engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config), **engine_kwargs)
    return MicroBatcher(
        engine,
        BatchPolicy(max_batch_size=4, max_wait_ms=1.0),
        AdmissionController(max_pending=16),
    )


class TestApplyReload:
    def test_full_reload(self, small_ba_graph, config):
        batcher = make_batcher(
            small_ba_graph, config,
            cache=SubgraphCache(), result_cache=ScoreTableCache(),
            tracer=Tracer(sample_rate=0.5),
        )
        with batcher.engine:
            outcome = apply_reload(
                batcher,
                {
                    "max_pending": 64,
                    "max_batch_size": 32,
                    "max_wait_ms": 4.0,
                    "dedup": False,
                    "cache_bytes": 5_000_000,
                    "result_cache_bytes": 2_000_000,
                    "trace_sample": 0.25,
                },
            )
            assert sorted(outcome["applied"]) == sorted(RELOADABLE_KEYS)
            assert batcher.admission.max_pending == 64
            assert batcher.policy.max_batch_size == 32
            assert batcher.policy.max_wait_ms == 4.0
            assert batcher.policy.dedup is False
            assert batcher.engine.cache.max_bytes == 5_000_000
            assert batcher.engine.result_cache.max_bytes == 2_000_000
            assert batcher.engine.tracer.sample_rate == 0.25
            assert outcome["config"] == frontend_config(batcher)
            assert outcome["config"]["cache_bytes"] == 5_000_000
            assert outcome["config"]["trace_sample"] == 0.25

    def test_empty_reload_is_a_no_op(self, small_ba_graph, config):
        batcher = make_batcher(small_ba_graph, config)
        with batcher.engine:
            before = frontend_config(batcher)
            outcome = apply_reload(batcher, {})
            assert outcome["applied"] == []
            assert outcome["evicted"] == {}
            assert frontend_config(batcher) == before

    def test_unknown_key_rejected_with_catalogue(self, small_ba_graph, config):
        batcher = make_batcher(small_ba_graph, config)
        with batcher.engine:
            with pytest.raises(ValueError, match="unknown reload key"):
                apply_reload(batcher, {"max_pending": 8, "turbo": True})

    def test_non_dict_config_rejected(self, small_ba_graph, config):
        batcher = make_batcher(small_ba_graph, config)
        with batcher.engine:
            with pytest.raises(ValueError, match="object"):
                apply_reload(batcher, [1, 2, 3])

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            ({"max_pending": 0}, "max_pending"),
            ({"max_pending": True}, "max_pending"),
            ({"max_pending": 2.5}, "max_pending"),
            ({"max_batch_size": -1}, "max_batch_size"),
            ({"max_wait_ms": -0.5}, "max_wait_ms"),
            ({"max_wait_ms": "fast"}, "max_wait_ms"),
            ({"dedup": 1}, "dedup"),
            ({"cache_bytes": 0}, "cache_bytes"),
            ({"result_cache_bytes": -1}, "result_cache_bytes"),
            ({"trace_sample": -0.1}, "trace_sample"),
            ({"trace_sample": 1.5}, "trace_sample"),
            ({"trace_sample": "often"}, "trace_sample"),
            ({"trace_sample": True}, "trace_sample"),
        ],
    )
    def test_invalid_values_rejected(
        self, small_ba_graph, config, overrides, fragment
    ):
        batcher = make_batcher(
            small_ba_graph, config,
            cache=SubgraphCache(), result_cache=ScoreTableCache(),
            tracer=Tracer(sample_rate=0.5),
        )
        with batcher.engine:
            with pytest.raises(ValueError, match=fragment):
                apply_reload(batcher, overrides)

    def test_all_or_nothing(self, small_ba_graph, config):
        """One bad field means not even the good fields apply."""
        batcher = make_batcher(small_ba_graph, config)
        with batcher.engine:
            before = frontend_config(batcher)
            with pytest.raises(ValueError):
                apply_reload(
                    batcher, {"max_pending": 99, "max_wait_ms": -1.0}
                )
            assert frontend_config(batcher) == before

    def test_resizing_absent_caches_is_an_error(self, small_ba_graph, config):
        batcher = make_batcher(small_ba_graph, config)  # no caches
        with batcher.engine:
            with pytest.raises(ValueError, match="no sub-graph cache"):
                apply_reload(batcher, {"cache_bytes": 1 << 20})
            with pytest.raises(ValueError, match="no stage-one result"):
                apply_reload(batcher, {"result_cache_bytes": 1 << 20})

    def test_trace_sample_without_tracer_is_an_error(
        self, small_ba_graph, config
    ):
        batcher = make_batcher(small_ba_graph, config)  # no tracer
        with batcher.engine:
            with pytest.raises(ValueError, match="no tracer"):
                apply_reload(batcher, {"trace_sample": 0.5})

    def test_shrink_evicts_and_reports_counts(self, small_ba_graph, config):
        batcher = make_batcher(
            small_ba_graph, config,
            cache=SubgraphCache(), result_cache=ScoreTableCache(),
        )
        engine = batcher.engine
        with engine:
            engine.solve_batch([PPRQuery(seed=s, k=20) for s in (3, 7, 11, 19)])
            assert engine.cache.stats.num_entries > 0
            outcome = apply_reload(
                batcher, {"cache_bytes": 1024, "result_cache_bytes": 1024}
            )
            assert outcome["evicted"]["cache"] >= 1
            assert outcome["evicted"]["result_cache"] >= 1
            assert engine.cache.stats.current_bytes <= 1024
            # Shrinking budgets evicts entries, never poisons correctness:
            # the same queries still answer (recomputed on miss).
            results = engine.solve_batch([PPRQuery(seed=3, k=20)])
            assert len(results) == 1

    def test_growing_keeps_entries_warm(self, small_ba_graph, config):
        batcher = make_batcher(small_ba_graph, config, cache=SubgraphCache())
        engine = batcher.engine
        with engine:
            engine.solve_batch([PPRQuery(seed=3, k=20)])
            entries_before = engine.cache.stats.num_entries
            outcome = apply_reload(batcher, {"cache_bytes": 1 << 30})
            assert outcome["evicted"].get("cache", 0) == 0
            assert engine.cache.stats.num_entries == entries_before

    def test_frontend_config_reports_none_for_absent_caches(
        self, small_ba_graph, config
    ):
        batcher = make_batcher(small_ba_graph, config)
        with batcher.engine:
            cfg = frontend_config(batcher)
            assert cfg["cache_bytes"] is None
            assert cfg["result_cache_bytes"] is None


class TestLivePlumbing:
    def test_set_max_pending_validation(self):
        admission = AdmissionController(max_pending=4)
        admission.set_max_pending(8)
        assert admission.max_pending == 8
        with pytest.raises(ValueError):
            admission.set_max_pending(0)
        with pytest.raises(ValueError):
            admission.set_max_pending(-1)
        assert admission.max_pending == 8

    def test_raising_max_pending_admits_more(self, small_ba_graph, config):
        """A raised bound takes effect for the very next query."""
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        admission = AdmissionController(max_pending=1)

        async def run():
            async with MicroBatcher(engine, None, admission) as batcher:
                await batcher.submit(PPRQuery(seed=3, k=10))
                admission.set_max_pending(32)
                results = await asyncio.gather(
                    *(
                        batcher.submit(PPRQuery(seed=s, k=10))
                        for s in range(8)
                    )
                )
                return results

        with engine:
            results = asyncio.run(run())
        assert len(results) == 8  # none shed under the raised bound

    def test_set_policy_swaps_for_next_batch(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with MicroBatcher(
                engine, BatchPolicy(max_batch_size=2, max_wait_ms=0.5)
            ) as batcher:
                await batcher.submit(PPRQuery(seed=3, k=10))
                batcher.set_policy(BatchPolicy(max_batch_size=64, max_wait_ms=1.0))
                assert batcher.policy.max_batch_size == 64
                # Traffic after the swap runs under the new policy.
                await asyncio.gather(
                    *(batcher.submit(PPRQuery(seed=s, k=10)) for s in range(6))
                )
                return batcher.stats()

        with engine:
            stats = asyncio.run(run())
        assert stats.admission.completed == 7

    def test_cache_resize_validation(self):
        cache = SubgraphCache()
        with pytest.raises(ValueError):
            cache.resize(0)
        result_cache = ScoreTableCache()
        with pytest.raises(ValueError):
            result_cache.resize(-5)


class TestApplyGraphUpdate:
    """The transport-agnostic path behind ``POST /admin/update`` and the
    TCP ``update`` op."""

    def test_applies_through_the_engine(self, small_ba_graph, config):
        from repro.graph.csr import CSRGraph
        from repro.serving.frontend import apply_graph_update

        batcher = make_batcher(small_ba_graph, config, cache=SubgraphCache())
        u, v = 0, int(small_ba_graph.neighbors(0)[0])
        canonical = (min(u, v), max(u, v))
        remaining = [
            edge for edge in small_ba_graph.iter_edges() if edge != canonical
        ]
        rebuilt = CSRGraph.from_edges(small_ba_graph.num_nodes, remaining)
        outcome = apply_graph_update(batcher, [["delete", u, v]])
        assert outcome["ops"] == 1
        assert outcome["new_fingerprint"] == rebuilt.fingerprint()
        assert batcher.engine.solver.graph.fingerprint() == rebuilt.fingerprint()

    def test_rejects_non_list_payload(self, small_ba_graph, config):
        from repro.serving.frontend import apply_graph_update

        batcher = make_batcher(small_ba_graph, config)
        fingerprint = batcher.engine.solver.graph.fingerprint()
        for bad in ({"op": "insert", "u": 0, "v": 1}, "insert", 7, None):
            with pytest.raises(ValueError, match="JSON array"):
                apply_graph_update(batcher, bad)
        with pytest.raises(ValueError, match="at least one"):
            apply_graph_update(batcher, [])
        assert batcher.engine.solver.graph.fingerprint() == fingerprint
