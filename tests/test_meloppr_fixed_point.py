"""Tests for the fixed-point (integer) datapath model of Sec. V-A."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.diffusion import graph_diffusion, seed_vector
from repro.graph.bfs import extract_ego_subgraph
from repro.meloppr.fixed_point import (
    FixedPointFormat,
    fixed_point_diffusion,
    quantize_alpha,
)
from repro.ppr.metrics import precision_at_k


class TestQuantizeAlpha:
    def test_q10_default(self):
        numerator, shift = quantize_alpha(0.85, 10)
        assert shift == 10
        assert numerator == round(0.85 * 1024)

    def test_effective_alpha_close(self):
        numerator, shift = quantize_alpha(0.85, 10)
        assert numerator / (1 << shift) == pytest.approx(0.85, abs=1e-3)

    def test_clamped_to_16_bits(self):
        numerator, _ = quantize_alpha(1.0, 20)
        assert numerator < 2**16

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            quantize_alpha(1.5, 10)

    def test_invalid_shift(self):
        with pytest.raises(ValueError):
            quantize_alpha(0.85, 0)


class TestFixedPointFormat:
    def test_for_subgraph_follows_paper_recipe(self):
        fmt = FixedPointFormat.for_subgraph(0.85, subgraph_nodes=1000, degree_scale=20.0)
        assert fmt.seed_value == 20_000
        assert fmt.shift_bits == 10

    def test_seed_value_clamped_to_32_bits(self):
        fmt = FixedPointFormat.for_subgraph(0.85, subgraph_nodes=10**9, degree_scale=100.0)
        assert fmt.seed_value < 2**32

    def test_alpha_effective(self):
        fmt = FixedPointFormat(seed_value=1000, alpha_numerator=512, shift_bits=10)
        assert fmt.alpha_effective == pytest.approx(0.5)

    def test_scale_alpha_is_shift_based(self):
        fmt = FixedPointFormat(seed_value=1000, alpha_numerator=512, shift_bits=10)
        np.testing.assert_array_equal(fmt.scale_alpha(np.array([1024])), [512])

    def test_to_float_normalises_by_seed_value(self):
        fmt = FixedPointFormat(seed_value=2000, alpha_numerator=870, shift_bits=10)
        assert fmt.to_float(np.array([1000]))[0] == pytest.approx(0.5)

    def test_invalid_seed_value(self):
        with pytest.raises(ValueError):
            FixedPointFormat(seed_value=0, alpha_numerator=870, shift_bits=10)

    def test_invalid_alpha_numerator(self):
        with pytest.raises(ValueError):
            FixedPointFormat(seed_value=10, alpha_numerator=2**16, shift_bits=10)

    def test_invalid_degree_scale(self):
        with pytest.raises(ValueError):
            FixedPointFormat.for_subgraph(0.85, subgraph_nodes=10, degree_scale=0.0)


class TestFixedPointDiffusion:
    def test_total_mass_never_exceeds_seed_value(self, small_ba_graph):
        fmt = FixedPointFormat.for_subgraph(0.85, small_ba_graph.num_nodes, 20.0)
        result = fixed_point_diffusion(small_ba_graph, 0, 3, fmt)
        assert result.accumulated_int.sum() <= fmt.seed_value

    def test_scores_non_negative(self, small_ba_graph):
        fmt = FixedPointFormat.for_subgraph(0.85, small_ba_graph.num_nodes, 20.0)
        result = fixed_point_diffusion(small_ba_graph, 0, 4, fmt)
        assert (result.accumulated_int >= 0).all()
        assert (result.residual_int >= 0).all()

    def test_length_zero(self, triangle_graph):
        fmt = FixedPointFormat.for_subgraph(0.85, 3, 2.0)
        result = fixed_point_diffusion(triangle_graph, 1, 0, fmt)
        assert result.accumulated_int[1] == fmt.seed_value

    def test_invalid_seed(self, triangle_graph):
        fmt = FixedPointFormat.for_subgraph(0.85, 3, 2.0)
        with pytest.raises(ValueError):
            fixed_point_diffusion(triangle_graph, 7, 2, fmt)

    def test_matches_float_topk_with_large_scale(self, citeseer_standin):
        """Sec. V-A: a large enough Max keeps the top-k ranking nearly intact."""
        subgraph, _ = extract_ego_subgraph(citeseer_standin, 10, 6)
        local_seed = subgraph.to_local(10)
        float_result = graph_diffusion(
            subgraph.graph, seed_vector(subgraph.num_nodes, local_seed), 6, 0.85
        )
        degrees = subgraph.graph.degrees()
        fmt = FixedPointFormat.for_subgraph(
            0.85, subgraph.num_nodes, degree_scale=float(degrees.max())
        )
        int_result = fixed_point_diffusion(subgraph.graph, local_seed, 6, fmt)
        k = 50
        float_topk = np.argsort(-float_result.accumulated, kind="stable")[:k]
        int_topk = np.argsort(-int_result.accumulated_int, kind="stable")[:k]
        assert precision_at_k(int_topk.tolist(), float_topk.tolist(), k) >= 0.8

    def test_larger_scale_is_at_least_as_precise(self, citeseer_standin):
        """Bigger Max (degree scale) must not reduce top-k agreement (shape of Sec. V-A)."""
        subgraph, _ = extract_ego_subgraph(citeseer_standin, 25, 6)
        local_seed = subgraph.to_local(25)
        float_result = graph_diffusion(
            subgraph.graph, seed_vector(subgraph.num_nodes, local_seed), 6, 0.85
        )
        k = 50
        float_topk = np.argsort(-float_result.accumulated, kind="stable")[:k].tolist()
        degrees = subgraph.graph.degrees()
        precisions = []
        for scale in (degrees.mean(), degrees.max() / 2.0, float(degrees.max())):
            fmt = FixedPointFormat.for_subgraph(0.85, subgraph.num_nodes, max(scale, 1.0))
            int_result = fixed_point_diffusion(subgraph.graph, local_seed, 6, fmt)
            int_topk = np.argsort(-int_result.accumulated_int, kind="stable")[:k].tolist()
            precisions.append(precision_at_k(int_topk, float_topk, k))
        assert precisions[0] <= precisions[-1] + 0.05
