"""Tests for the byte-budgeted LRU ego-sub-graph cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.diffusion import graph_diffusion, seed_vector
from repro.graph.bfs import extract_ego_subgraph
from repro.serving.cache import SubgraphCache, _entry_nbytes


def _entry_size(graph, center, depth) -> int:
    subgraph, bfs = extract_ego_subgraph(graph, center, depth)
    return _entry_nbytes(subgraph, bfs)


class TestHitMissAccounting:
    def test_miss_then_hit(self, small_ba_graph):
        cache = SubgraphCache(max_bytes=1 << 20)
        _, _, hit = cache.get_or_extract(small_ba_graph, 5, 2)
        assert not hit
        _, _, hit = cache.get_or_extract(small_ba_graph, 5, 2)
        assert hit
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.lookups == 2
        assert stats.hit_rate == pytest.approx(0.5)
        assert stats.num_entries == 1
        assert stats.current_bytes > 0

    def test_distinct_keys_do_not_collide(self, small_ba_graph):
        cache = SubgraphCache(max_bytes=1 << 20)
        cache.get_or_extract(small_ba_graph, 5, 2)
        _, _, hit = cache.get_or_extract(small_ba_graph, 5, 3)
        assert not hit  # same center, different depth
        _, _, hit = cache.get_or_extract(small_ba_graph, 6, 2)
        assert not hit  # different center, same depth
        assert cache.stats.misses == 3

    def test_stats_as_dict_round_trip(self, small_ba_graph):
        cache = SubgraphCache(max_bytes=1 << 20)
        cache.get_or_extract(small_ba_graph, 1, 2)
        cache.get_or_extract(small_ba_graph, 1, 2)
        payload = cache.stats.as_dict()
        assert payload["hits"] == 1
        assert payload["misses"] == 1
        assert payload["hit_rate"] == pytest.approx(0.5)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            SubgraphCache(max_bytes=0)


class TestByteBudgetEviction:
    def test_lru_eviction_order(self, small_ba_graph):
        # Depth-0 entries all have the same size (a single node, no edges);
        # budget exactly two of them so inserting a third evicts the LRU one.
        size = _entry_size(small_ba_graph, 0, 0)
        assert size == _entry_size(small_ba_graph, 1, 0)
        cache = SubgraphCache(max_bytes=2 * size + size // 2)
        cache.get_or_extract(small_ba_graph, 0, 0)
        cache.get_or_extract(small_ba_graph, 1, 0)
        # Touch 0 so 1 becomes the LRU victim.
        cache.get_or_extract(small_ba_graph, 0, 0)
        cache.get_or_extract(small_ba_graph, 2, 0)
        assert (0, 0) in cache
        assert (1, 0) not in cache
        assert (2, 0) in cache
        assert cache.stats.evictions == 1

    def test_budget_is_respected(self, small_ba_graph):
        budget = 2 * _entry_size(small_ba_graph, 0, 2)
        cache = SubgraphCache(max_bytes=budget)
        for center in range(25):
            cache.get_or_extract(small_ba_graph, center, 2)
        assert cache.stats.current_bytes <= budget

    def test_oversized_entry_is_not_cached(self, small_ba_graph):
        cache = SubgraphCache(max_bytes=64)  # smaller than any extraction
        subgraph, bfs, hit = cache.get_or_extract(small_ba_graph, 0, 2)
        assert not hit
        assert subgraph.num_nodes > 0
        stats = cache.stats
        assert stats.num_entries == 0
        assert stats.rejected == 1
        # A second lookup misses again (nothing was retained).
        _, _, hit = cache.get_or_extract(small_ba_graph, 0, 2)
        assert not hit

    def test_clear_keeps_counters(self, small_ba_graph):
        cache = SubgraphCache(max_bytes=1 << 20)
        cache.get_or_extract(small_ba_graph, 0, 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1
        assert cache.stats.current_bytes == 0

    def test_cache_binds_to_one_graph(self, small_ba_graph, small_citation_graph):
        cache = SubgraphCache(max_bytes=1 << 20)
        cache.get_or_extract(small_ba_graph, 0, 2)
        with pytest.raises(ValueError, match="bound to graph"):
            cache.get_or_extract(small_citation_graph, 0, 2)
        # clear() resets the binding.
        cache.clear()
        _, _, hit = cache.get_or_extract(small_citation_graph, 0, 2)
        assert not hit


class TestCachedExtractionCorrectness:
    def test_cached_equals_fresh(self, small_citation_graph):
        cache = SubgraphCache(max_bytes=1 << 22)
        fresh_sub, fresh_bfs = extract_ego_subgraph(small_citation_graph, 11, 3)
        cache.get_or_extract(small_citation_graph, 11, 3)
        cached_sub, cached_bfs, hit = cache.get_or_extract(small_citation_graph, 11, 3)
        assert hit
        np.testing.assert_array_equal(cached_sub.global_ids, fresh_sub.global_ids)
        np.testing.assert_array_equal(cached_sub.graph.indptr, fresh_sub.graph.indptr)
        np.testing.assert_array_equal(cached_sub.graph.indices, fresh_sub.graph.indices)
        np.testing.assert_array_equal(cached_bfs.nodes, fresh_bfs.nodes)
        assert cached_bfs.edges_scanned == fresh_bfs.edges_scanned

    def test_diffusion_on_cached_subgraph_matches(self, small_citation_graph):
        cache = SubgraphCache(max_bytes=1 << 22)
        fresh_sub, _ = extract_ego_subgraph(small_citation_graph, 7, 3)
        cache.get_or_extract(small_citation_graph, 7, 3)
        cached_sub, _, hit = cache.get_or_extract(small_citation_graph, 7, 3)
        assert hit
        fresh = graph_diffusion(
            fresh_sub.graph, seed_vector(fresh_sub.num_nodes, fresh_sub.to_local(7)), 3, 0.85
        )
        cached = graph_diffusion(
            cached_sub.graph,
            seed_vector(cached_sub.num_nodes, cached_sub.to_local(7)),
            3,
            0.85,
        )
        np.testing.assert_array_equal(cached.accumulated, fresh.accumulated)
        np.testing.assert_array_equal(cached.residual, fresh.residual)


class TestSurgicalInvalidation:
    def test_max_depth_tracks_retained_entries(self, small_ba_graph):
        cache = SubgraphCache()
        assert cache.max_depth() == 0
        cache.get_or_extract(small_ba_graph, 3, 2)
        cache.get_or_extract(small_ba_graph, 5, 4)
        assert cache.max_depth() == 4

    def test_invalidate_covering_drops_exactly_in_reach(self, small_ba_graph):
        cache = SubgraphCache()
        cache.get_or_extract(small_ba_graph, 3, 2)
        cache.get_or_extract(small_ba_graph, 5, 4)
        distances = np.full(small_ba_graph.num_nodes, 99, dtype=np.int64)
        distances[3] = 3  # outside its depth-2 ball
        distances[5] = 4  # exactly on the depth-4 boundary: must drop
        assert cache.invalidate_covering(distances) == 1
        assert (3, 2) in cache and (5, 4) not in cache
        # Drops are invalidations, not evictions, and the bytes are freed.
        stats = cache.stats
        assert stats.evictions == 0
        cache.validate()

    def test_rebind_keeps_survivors_warm(self, small_ba_graph):
        from repro.graph.csr import CSRGraph

        cache = SubgraphCache()
        subgraph, bfs, hit = cache.get_or_extract(small_ba_graph, 3, 2)
        rebuilt = CSRGraph.from_edges(
            small_ba_graph.num_nodes,
            list(small_ba_graph.iter_edges()),
            name=small_ba_graph.name,
        )
        cache.rebind(rebuilt)
        again, _, hit = cache.get_or_extract(rebuilt, 3, 2)
        assert hit
        assert again is subgraph
        assert cache.stats.hits == 1
        # The binding genuinely moved: the old host is now foreign.
        with pytest.raises(ValueError):
            cache.get_or_extract(small_ba_graph, 7, 2)
