"""Kernel selection threaded through the serving stack.

The diffusion kernel is a pure speed knob: every engine/backend/kernel
combination must return bit-identical answers.  These tests pin the
plumbing — engine construction, the process backend's wire protocol, and
the server CLI flag — rather than the kernels themselves (those live in
``test_diffusion_kernels.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving import QueryEngine, SerialBackend, ThreadPoolBackend
from repro.serving.backends import ProcessPoolBackend, make_backend


@pytest.fixture()
def queries():
    seeds = [3, 11, 3, 27, 11]
    return [PPRQuery(seed=seed, k=40, alpha=0.85, length=6) for seed in seeds]


@pytest.fixture()
def solver(small_ba_graph):
    return MeLoPPRSolver(small_ba_graph, MeLoPPRConfig.paper_default())


class TestEngineKernelSelection:
    def test_kernel_property_is_resolved(self, solver):
        engine = QueryEngine(solver, kernel="csr")
        assert engine.kernel == "csr"
        # ``auto`` resolves to a concrete registered kernel at construction.
        assert QueryEngine(solver).kernel != "auto"

    def test_unknown_kernel_fails_at_construction(self, solver):
        with pytest.raises(ValueError, match="unknown diffusion kernel"):
            QueryEngine(solver, kernel="bogus")

    @pytest.mark.parametrize(
        "backend_factory",
        [SerialBackend, lambda: ThreadPoolBackend(2)],
        ids=["serial", "threaded"],
    )
    @pytest.mark.parametrize("kernel", ["reference", "csr", "frontier"])
    def test_answers_identical_across_kernels(
        self, solver, queries, backend_factory, kernel
    ):
        expected = [solver.solve(query) for query in queries]
        with QueryEngine(solver, backend=backend_factory(), kernel=kernel) as engine:
            results = engine.solve_batch(queries)
        for got, want in zip(results, expected):
            assert got.top_k_nodes() == want.top_k_nodes()
            for node, score in want.scores.items():
                assert got.scores.get(node) == score

    @pytest.mark.parametrize("kernel", ["reference", "frontier"])
    def test_process_backend_answers_identical(self, small_ba_graph, queries, kernel):
        solver = MeLoPPRSolver(small_ba_graph, MeLoPPRConfig.paper_default())
        expected = [solver.solve(query) for query in queries]
        with QueryEngine(
            solver, backend=make_backend("process:2"), kernel=kernel
        ) as engine:
            results = engine.solve_batch(queries)
        for got, want in zip(results, expected):
            assert got.top_k_nodes() == want.top_k_nodes()
            for node, score in want.scores.items():
                assert got.scores.get(node) == score


class TestProcessBackendKernelPlumbing:
    def test_bad_kernel_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown diffusion kernel"):
            ProcessPoolBackend(num_workers=1, kernel="bogus")

    def test_run_stage_tasks_kernel_override(self, small_ba_graph):
        from repro.meloppr.planner import StageTask, execute_stage_task

        task = StageTask(stage_index=0, center=3, length=2, weight=1.0, alpha=0.85)
        expected = execute_stage_task(small_ba_graph, task, kernel="reference")
        backend = ProcessPoolBackend(num_workers=1, kernel="reference")
        try:
            backend.bind_graph(small_ba_graph)
            outcomes = backend.run_stage_tasks([task], kernel="frontier")
        finally:
            backend.close()
        assert len(outcomes) == 1
        assert np.array_equal(
            outcomes[0].diffusion.accumulated, expected.diffusion.accumulated
        )
        assert outcomes[0].diffusion.propagations == expected.diffusion.propagations


class TestServerKernelFlag:
    def test_parser_accepts_kernel(self):
        from repro.serving.frontend.server import build_parser

        args = build_parser().parse_args(["--kernel", "frontier"])
        assert args.kernel == "frontier"
        assert build_parser().parse_args([]).kernel is None

    def test_build_frontend_wires_kernel_into_engine(self):
        from repro.serving.frontend.server import build_frontend, build_parser

        args = build_parser().parse_args(
            ["--dataset", "G1", "--backend", "serial", "--kernel", "csr"]
        )
        engine, _, _ = build_frontend(args)
        try:
            assert engine.kernel == "csr"
        finally:
            engine.close()

    def test_build_frontend_rejects_unknown_kernel(self):
        from repro.serving.frontend.server import build_frontend, build_parser

        args = build_parser().parse_args(["--backend", "serial", "--kernel", "nope"])
        with pytest.raises(ValueError, match="unknown diffusion kernel"):
            build_frontend(args)
