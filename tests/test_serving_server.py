"""Tests for the TCP/JSON query service and its asyncio client.

Everything runs against a real socket on an ephemeral localhost port: the
differential round-trip (wire answers identical to the in-process engine),
protocol-level shed/deadline/bad-request answers, pipelining, and the stats
endpoint's JSON document.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.diffusion.sparse_vector import SparseScoreVector
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.serving import QueryEngine, SubgraphCache
from repro.serving.frontend import (
    AdmissionController,
    AsyncClient,
    AsyncQueryServer,
    BatchPolicy,
    MicroBatcher,
    QueryShedError,
    ServerError,
)


@pytest.fixture()
def config():
    return MeLoPPRConfig(stage_lengths=(3, 3), track_memory=False)


class SleepySolver(PPRSolver):
    """Stub solver with a fixed service time (forces queueing)."""

    name = "sleepy"

    def __init__(self, graph, delay_seconds: float) -> None:
        super().__init__(graph)
        self.delay_seconds = delay_seconds

    def solve(self, query: PPRQuery) -> PPRResult:
        time.sleep(self.delay_seconds)
        return PPRResult(query=query, scores=SparseScoreVector({query.seed: 1.0}))


def serve(engine, policy=None, admission=None):
    """Async context manager: batcher + server + connected client."""

    class _Stack:
        async def __aenter__(self):
            self.batcher = MicroBatcher(engine, policy, admission)
            await self.batcher.start()
            self.server = AsyncQueryServer(self.batcher)
            host, port = await self.server.start()
            self.client = await AsyncClient.connect(host, port)
            return self.client, self.server

        async def __aexit__(self, exc_type, exc, traceback):
            await self.client.close()
            await self.server.stop()
            await self.batcher.stop()

    return _Stack()


class TestRoundTrip:
    def test_wire_answers_match_engine(self, small_ba_graph, config):
        queries = [PPRQuery(seed=s, k=30) for s in (3, 11, 27, 3, 11)]
        with QueryEngine(MeLoPPRSolver(small_ba_graph, config)) as reference:
            expected = [
                [(int(n), float(s)) for n, s in result.top_k()]
                for result in reference.solve_batch(queries)
            ]

        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph, config), cache=SubgraphCache()
        )

        async def run():
            async with serve(engine) as (client, _):
                return await asyncio.gather(
                    *(client.solve(seed=q.seed, k=q.k) for q in queries)
                )

        with engine:
            answers = asyncio.run(run())
        assert answers == expected

    def test_ping_and_stats(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (client, _):
                assert await client.ping()
                await client.solve(seed=3, k=10)
                stats = await client.stats()
                return stats

        with engine:
            stats = asyncio.run(run())
        # The stats document is the nested frontend/admission/engine report.
        assert stats["batches"] >= 1
        assert stats["admission"]["completed"] == 1
        assert stats["admission"]["shed_rate"] == 0.0
        assert stats["admission"]["latency"]["count"] == 1
        assert stats["engine"]["queries_served"] == 1
        assert stats["policy"]["max_batch_size"] >= 1
        json.dumps(stats)  # and it is JSON-serialisable end to end

    def test_query_response_shape(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (client, _):
                return await client.query(seed=3, k=10)

        with engine:
            response = asyncio.run(run())
        assert response["ok"] is True
        assert response["seed"] == 3
        assert response["k"] == 10
        assert response["latency_ms"] >= 0
        assert len(response["top"]) <= 10
        assert all(len(pair) == 2 for pair in response["top"])


class TestProtocolErrors:
    def test_missing_seed_is_bad_request(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (client, _):
                return await client.request({"op": "query", "k": 10})

        with engine:
            response = asyncio.run(run())
        assert response["ok"] is False
        assert response["error"] == "bad_request"
        assert "seed" in response["message"]

    def test_out_of_range_seed_is_bad_request(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (client, _):
                with pytest.raises(ServerError, match="bad_request"):
                    await client.solve(seed=10_000, k=10)

        with engine:
            asyncio.run(run())

    def test_unknown_op_is_bad_request(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (client, _):
                return await client.request({"op": "explode"})

        with engine:
            response = asyncio.run(run())
        assert response["error"] == "bad_request"

    def test_invalid_timeout_is_bad_request(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (client, _):
                return await client.request(
                    {"op": "query", "seed": 3, "timeout_ms": -5}
                )

        with engine:
            response = asyncio.run(run())
        assert response["error"] == "bad_request"

    def test_float_seed_is_bad_request_not_truncated(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (client, _):
                return await client.request({"op": "query", "seed": 42.9, "k": 10})

        with engine:
            response = asyncio.run(run())
        assert response["ok"] is False
        assert response["error"] == "bad_request"
        assert "seed" in response["message"]

    def test_boolean_seed_is_bad_request(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (client, _):
                return await client.request({"op": "query", "seed": True, "k": 10})

        with engine:
            response = asyncio.run(run())
        assert response["error"] == "bad_request"

    def test_oversized_line_answered_then_connection_closed(
        self, small_ba_graph, config
    ):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (_, server):
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b'{"junk": "' + b"x" * 70_000 + b'"}\n')
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout=5)
                trailer = await asyncio.wait_for(reader.readline(), timeout=5)
                writer.close()
                await writer.wait_closed()
                return json.loads(line), trailer

        with engine:
            response, trailer = asyncio.run(run())
        # An explicit protocol answer, then a clean close — not a dropped
        # connection with no response.
        assert response["ok"] is False
        assert response["error"] == "bad_request"
        assert "limit" in response["message"]
        assert trailer == b""

    def test_malformed_json_line_gets_error_response(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (_, server):
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout=5)
                writer.close()
                await writer.wait_closed()
                return json.loads(line)

        with engine:
            response = asyncio.run(run())
        assert response["ok"] is False
        assert response["error"] == "bad_request"


class TestPipeliningBackpressure:
    def test_non_reading_client_is_bounded_not_buffered(self, small_ba_graph, config):
        # A client that pipelines pings without ever reading must not grow
        # the server's in-flight task set past max_pipelined.
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            batcher = MicroBatcher(engine)
            await batcher.start()
            server = AsyncQueryServer(batcher, max_pipelined=4)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            # Flood pings without reading any responses.
            for _ in range(200):
                writer.write(b'{"op": "ping"}\n')
            await writer.drain()
            await asyncio.sleep(0.2)  # let the server chew on the flood
            # The server is still healthy: reading drains the flood and a
            # fresh request round-trips.
            answered = 0
            while answered < 200:
                line = await asyncio.wait_for(reader.readline(), timeout=5)
                assert json.loads(line)["ok"] is True
                answered += 1
            writer.write(b'{"op": "ping", "id": "after"}\n')
            await writer.drain()
            final = json.loads(await asyncio.wait_for(reader.readline(), timeout=5))
            writer.close()
            await writer.wait_closed()
            await server.stop()
            await batcher.stop()
            return final

        with engine:
            final = asyncio.run(run())
        assert final["id"] == "after" and final["ok"] is True

    def test_rejects_nonpositive_max_pipelined(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        with pytest.raises(ValueError, match="max_pipelined"):
            AsyncQueryServer(MicroBatcher(engine), max_pipelined=0)
        engine.close()


class TestServerLifecycle:
    def test_address_before_start_raises(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        server = AsyncQueryServer(MicroBatcher(engine))
        with pytest.raises(RuntimeError, match="not started"):
            server.address
        engine.close()

    def test_double_start_raises_and_stop_is_idempotent(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            batcher = MicroBatcher(engine)
            await batcher.start()
            server = AsyncQueryServer(batcher)
            await server.start()
            with pytest.raises(RuntimeError, match="already started"):
                await server.start()
            await server.stop()
            await server.stop()  # idempotent
            await batcher.stop()

        with engine:
            asyncio.run(run())

    def test_serve_forever_autostarts_and_serves(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            batcher = MicroBatcher(engine)
            await batcher.start()
            server = AsyncQueryServer(batcher)
            forever = asyncio.ensure_future(server.serve_forever())
            while server._server is None:  # wait for the auto-start
                await asyncio.sleep(0.01)
            host, port = server.address
            client = await AsyncClient.connect(host, port)
            assert await client.ping()
            await client.close()
            forever.cancel()
            try:
                await forever
            except asyncio.CancelledError:
                pass
            await server.stop()
            await batcher.stop()

        with engine:
            asyncio.run(run())


class TestOverloadOverTheWire:
    def test_deadline_is_a_protocol_answer(self, small_ba_graph):
        from repro.serving.frontend import DeadlineExceededError

        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.1))
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0)

        async def run():
            async with serve(engine, policy) as (client, _):
                blocker = asyncio.ensure_future(client.solve(seed=1, k=10))
                await asyncio.sleep(0.02)
                with pytest.raises(DeadlineExceededError):
                    await client.solve(seed=2, k=10, timeout_ms=5.0)
                await blocker

        with engine:
            asyncio.run(run())

    def test_shed_is_a_protocol_answer(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.05))
        admission = AdmissionController(max_pending=2)
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0)

        async def run():
            async with serve(engine, policy, admission) as (client, _):
                outcomes = await asyncio.gather(
                    *(client.solve(seed=s % 5, k=10) for s in range(12)),
                    return_exceptions=True,
                )
                return outcomes

        with engine:
            outcomes = asyncio.run(run())
        completed = [o for o in outcomes if isinstance(o, list)]
        shed = [o for o in outcomes if isinstance(o, QueryShedError)]
        assert len(completed) + len(shed) == 12
        assert shed, "overload must produce explicit shed responses"
        assert completed, "admitted queries must still be answered"


class TestServerCLIConstruction:
    def test_build_frontend_from_cli_args(self):
        from repro.serving.frontend.server import build_frontend, build_parser

        args = build_parser().parse_args(
            [
                "--dataset",
                "G1",
                "--backend",
                "thread:2",
                "--max-batch",
                "4",
                "--max-wait-ms",
                "1.5",
                "--no-dedup",
                "--max-pending",
                "32",
            ]
        )
        engine, policy, admission = build_frontend(args)
        try:
            assert engine.backend.name == "thread-pool"
            assert engine.cache is not None
            assert policy.max_batch_size == 4
            assert policy.max_wait_ms == 1.5
            assert policy.dedup is False
            assert admission.max_pending == 32
        finally:
            engine.close()

    def test_build_frontend_no_cache(self):
        from repro.serving.frontend.server import build_frontend, build_parser

        args = build_parser().parse_args(["--no-cache", "--backend", "serial"])
        engine, _, _ = build_frontend(args)
        try:
            assert engine.cache is None
            assert engine.backend.name == "serial"
            # --no-cache means ALL caching off: a surviving result cache
            # would silently invalidate an operator's uncached baseline.
            assert engine.result_cache is None
        finally:
            engine.close()

        # ...unless an explicit --result-cache-bytes overrides it.
        args = build_parser().parse_args(
            ["--no-cache", "--backend", "serial", "--result-cache-bytes", "65536"]
        )
        engine, _, _ = build_frontend(args)
        try:
            assert engine.cache is None
            assert engine.result_cache is not None
        finally:
            engine.close()

    def test_build_frontend_result_cache_flags(self):
        from repro.serving.frontend.server import build_frontend, build_parser

        args = build_parser().parse_args(
            [
                "--backend",
                "serial",
                "--result-cache-bytes",
                "65536",
                "--result-cache-ttl",
                "30",
            ]
        )
        engine, _, _ = build_frontend(args)
        try:
            assert engine.result_cache.max_bytes == 65536
            assert engine.result_cache.ttl_seconds == 30.0
        finally:
            engine.close()

        args = build_parser().parse_args(
            ["--backend", "serial", "--result-cache-bytes", "0"]
        )
        engine, _, _ = build_frontend(args)
        try:
            assert engine.result_cache is None
        finally:
            engine.close()

        # A non-positive TTL means "no TTL" (same 0-disables convention as
        # the bytes flag), not a ValueError at server startup.
        args = build_parser().parse_args(
            ["--backend", "serial", "--result-cache-ttl", "0"]
        )
        engine, _, _ = build_frontend(args)
        try:
            assert engine.result_cache is not None
            assert engine.result_cache.ttl_seconds is None
        finally:
            engine.close()


class TestClientLifecycle:
    def test_close_fails_pending_requests(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.2))

        async def run():
            async with serve(engine) as (client, _):
                pending = asyncio.ensure_future(client.solve(seed=1, k=10))
                await asyncio.sleep(0.02)
                await client.close()
                with pytest.raises(ConnectionError):
                    await pending

        with engine:
            asyncio.run(run())

    def test_request_after_close_raises(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (client, _):
                await client.ping()
            with pytest.raises(ConnectionError):
                await client.ping()

        with engine:
            asyncio.run(run())


class TestReportedLatency:
    def test_reported_latency_covers_the_full_server_path(self, small_ba_graph):
        """The wire-reported latency clock starts at line receipt.

        It must therefore dominate the admission-measured latency (which
        starts later, at submit): a reported latency below the batcher's
        own measurement would mean the server was excluding parse/dispatch
        time from what it tells clients.
        """
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.05))

        async def run():
            async with serve(engine) as (client, server):
                response = await client.request({"seed": 1, "k": 5})
                stats = server.batcher.stats()
                return response, stats

        with engine:
            response, stats = asyncio.run(run())
        assert response["ok"] is True
        reported_ms = response["latency_ms"]
        measured_ms = stats.admission.latency.max_seconds * 1e3
        assert measured_ms > 0
        assert reported_ms >= measured_ms
        # And it is a real measurement of the sleepy solve, not a stopwatch
        # started after the work happened.
        assert reported_ms >= 50.0


class TestProcessBackendCLIRebuild:
    def test_no_cache_rebuild_preserves_process_backend_config(self):
        """Regression: ``--no-cache`` rebuilds the backend; the rebuild must
        keep the worker count, spawn context and kernel of the original."""
        from repro.serving.frontend.server import build_frontend, build_parser

        args = build_parser().parse_args(
            [
                "--no-cache",
                "--backend",
                "process:2",
                "--kernel",
                "csr",
            ]
        )
        engine, _, _ = build_frontend(args)
        try:
            assert engine.cache is None
            assert engine.result_cache is None
            # The engine-resolved kernel (what every stage task runs with).
            assert engine.kernel == "csr"
            # The rebuilt backend keeps the original's full configuration.
            assert engine.backend.name == "process-pool"
            assert engine.backend.num_workers == 2
            from repro.diffusion.kernels import resolve_kernel_name
            from repro.serving.backends import make_backend

            pristine = make_backend("process:2")
            try:
                assert engine.backend.kernel == pristine.kernel
                assert engine.backend.mp_context == pristine.mp_context
            finally:
                pristine.close()
            assert engine.backend.kernel == resolve_kernel_name(None)
        finally:
            engine.close()

    def test_cached_process_backend_keeps_kernel(self):
        from repro.serving.frontend.server import build_frontend, build_parser

        args = build_parser().parse_args(["--backend", "process:2", "--kernel", "csr"])
        engine, _, _ = build_frontend(args)
        try:
            assert engine.kernel == "csr"
            assert engine.backend.name == "process-pool"
            assert engine.backend.num_workers == 2
        finally:
            engine.close()


class TestTcpLiveOps:
    def test_drain_op_completes_inflight_and_refuses_new_connections(
        self, small_ba_graph
    ):
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.1))
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0)

        async def run():
            batcher = MicroBatcher(engine, policy)
            await batcher.start()
            server = AsyncQueryServer(batcher)
            host, port = await server.start()
            client = await AsyncClient.connect(host, port)
            try:
                inflight = asyncio.ensure_future(client.solve(seed=1, k=5))
                await asyncio.sleep(0.02)
                ack = await client.request({"op": "drain"})
                assert ack["ok"] is True and ack["draining"] is True
                # The in-flight query still completes with its answer.
                assert await inflight == [(1, 1.0)]
                await server.drain()  # wait for the background drain
                assert server.draining
                with pytest.raises(OSError):
                    await AsyncClient.connect(host, port)
            finally:
                await client.close()
                await server.drain()
                await batcher.stop()

        with engine:
            asyncio.run(run())

    def test_sigterm_triggers_graceful_drain(self, small_ba_graph):
        import os
        import signal

        from repro.serving.frontend.server import install_drain_signal_handler

        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.1))
        policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0)

        async def run():
            batcher = MicroBatcher(engine, policy)
            await batcher.start()
            server = AsyncQueryServer(batcher)
            host, port = await server.start()
            install_drain_signal_handler(server)
            client = await AsyncClient.connect(host, port)
            try:
                inflight = asyncio.ensure_future(client.solve(seed=1, k=5))
                await asyncio.sleep(0.02)
                os.kill(os.getpid(), signal.SIGTERM)
                # The signal handler schedules the drain on the loop; the
                # in-flight query must still be answered, then the listener
                # refuses new connections.
                assert await inflight == [(1, 1.0)]
                await server.drain()
                assert server.draining
                with pytest.raises(OSError):
                    await AsyncClient.connect(host, port)
            finally:
                asyncio.get_running_loop().remove_signal_handler(signal.SIGTERM)
                await client.close()
                await server.drain()
                await batcher.stop()

        with engine:
            asyncio.run(run())

    def test_reload_op_applies_and_reports(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (client, server):
                response = await client.request(
                    {
                        "op": "reload",
                        "config": {"max_pending": 128, "max_wait_ms": 5.0},
                    }
                )
                assert response["ok"] is True
                assert sorted(response["applied"]) == [
                    "max_pending",
                    "max_wait_ms",
                ]
                assert response["config"]["max_pending"] == 128
                assert server.batcher.admission.max_pending == 128
                assert server.batcher.policy.max_wait_ms == 5.0
                # The connection is still serving after the reload.
                answer = await client.solve(seed=3, k=10)
                assert len(answer) > 0

        with engine:
            asyncio.run(run())

    def test_reload_op_bad_key_is_typed_and_changes_nothing(
        self, small_ba_graph, config
    ):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with serve(engine) as (client, server):
                before = server.batcher.admission.max_pending
                response = await client.request(
                    {
                        "op": "reload",
                        "config": {"max_pending": 5, "warp_speed": True},
                    }
                )
                assert response["ok"] is False
                assert response["error"] == "bad_request"
                assert "warp_speed" in response["message"]
                assert server.batcher.admission.max_pending == before

        with engine:
            asyncio.run(run())


class TestLiveUpdate:
    def test_update_over_the_wire(self, small_ba_graph, config):
        from repro.graph.csr import CSRGraph

        u, v = 0, int(small_ba_graph.neighbors(0)[0])
        canonical = (min(u, v), max(u, v))
        remaining = [
            edge for edge in small_ba_graph.iter_edges() if edge != canonical
        ]
        rebuilt = CSRGraph.from_edges(small_ba_graph.num_nodes, remaining)
        query = PPRQuery(seed=3, k=20)
        expected = [
            (int(n), float(s))
            for n, s in MeLoPPRSolver(rebuilt, config).solve(query).top_k()
        ]
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph, config), cache=SubgraphCache()
        )

        async def run():
            async with serve(engine) as (client, _):
                await client.solve(seed=3, k=20)  # warm the old topology
                response = await client.request(
                    {"op": "update", "ops": [["delete", u, v]]}
                )
                answer = await client.solve(seed=3, k=20)
                return response, answer

        with engine:
            response, answer = asyncio.run(run())
        assert response["ok"] is True and response["op"] == "update"
        assert response["ops"] == 1
        assert response["new_fingerprint"] == rebuilt.fingerprint()
        assert response["touched_nodes"] >= 2
        # Post-update answers come from the new topology, not stale caches.
        assert answer == expected

    def test_bad_update_is_bad_request_and_changes_nothing(
        self, small_ba_graph, config
    ):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        fingerprint = small_ba_graph.fingerprint()

        async def run():
            async with serve(engine) as (client, _):
                missing = await client.request({"op": "update"})
                loop = await client.request(
                    {"op": "update", "ops": [["insert", 2, 2]]}
                )
                return missing, loop

        with engine:
            missing, loop = asyncio.run(run())
        assert missing["error"] == "bad_request"
        assert loop["error"] == "bad_request"
        assert "self-loop" in loop["message"]
        assert engine.solver.graph.fingerprint() == fingerprint
