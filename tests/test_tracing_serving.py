"""End-to-end tracing through the serving path: engine, batcher, servers.

The unit behavior of the tracer lives in ``tests/test_tracing.py``; these
tests prove the *threading* — that a sampled query through the real stack
(admission queue → micro-batch → engine → stages → process-pool workers →
shard router) yields one connected span tree, that trace context propagates
in over both transports (TCP ``trace`` field, HTTP ``traceparent`` header),
that the debug endpoints export valid Chrome trace-event JSON, and that the
disabled path costs nothing measurable.
"""

from __future__ import annotations

import asyncio
import io
import json
import logging
import time

import pytest

from repro.graph.partition import partition_graph
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving import (
    ProcessPoolBackend,
    QueryEngine,
    ShardRouter,
    SubgraphCache,
    Tracer,
    format_traceparent,
    validate_trace_events,
)
from repro.serving.tracing import make_span_id, make_trace_id
from repro.serving.frontend import (
    AdmissionController,
    AsyncClient,
    AsyncQueryServer,
    BatchPolicy,
    HttpClient,
    HttpQueryServer,
    MicroBatcher,
    configure_logging,
)
from repro.serving.result_cache import ScoreTableCache


@pytest.fixture()
def config():
    return MeLoPPRConfig(stage_lengths=(3, 3), track_memory=False)


def span_names(tree):
    return [span["name"] for span in tree["spans"]]


def assert_connected(tree):
    """Every non-root span's parent resolves inside the same tree."""
    ids = {span["span_id"] for span in tree["spans"]}
    roots = [span for span in tree["spans"] if span["parent_id"] is None]
    external = [
        span
        for span in tree["spans"]
        if span["parent_id"] is not None and span["parent_id"] not in ids
    ]
    # One local root; only the root may point at an external (inbound
    # traceparent) parent — everything else links inside the tree.
    assert len(roots) + len(external) == 1, (roots, external)
    for span in tree["spans"]:
        assert span["end"] is not None, f"open span survived finish: {span}"


class TestEngineTracing:
    def test_serial_engine_records_stage_cache_and_extract_spans(
        self, small_ba_graph, config
    ):
        tracer = Tracer(sample_rate=1.0)
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph, config),
            cache=SubgraphCache(),
            result_cache=ScoreTableCache(),
            tracer=tracer,
        )
        query = PPRQuery(seed=3, k=20)
        with engine:
            for _ in range(2):
                ctx = tracer.start_trace("request", seed=query.seed)
                engine.solve_batch([query], [ctx])
                ctx.finish(status="ok")

        first, second = tracer.traces()
        for tree in (first, second):
            assert_connected(tree)
            names = span_names(tree)
            assert names[0] == "request"
            assert "engine.query" in names
            assert "engine.result_cache" in names
            assert "engine.stage" in names
            assert "extract" in names

        # The second identical query is a stage-one result-cache hit, and
        # the span tree says so (the hit skips stage recomputation).
        def cache_outcome(tree):
            span = next(
                s for s in tree["spans"] if s["name"] == "engine.result_cache"
            )
            return span["attributes"]["outcome"]

        assert cache_outcome(first) == "miss"
        assert cache_outcome(second) == "hit"
        # The first trace's first extraction is the seed's own BFS.
        extract = next(s for s in first["spans"] if s["name"] == "extract")
        assert extract["attributes"]["center"] == 3
        assert "cache_hit" in extract["attributes"]

    def test_sharded_extract_spans_carry_routing_attributes(
        self, small_ba_graph, config
    ):
        tracer = Tracer(sample_rate=1.0)
        partition = partition_graph(
            small_ba_graph, 2, strategy="hash", halo_depth=3
        )
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph, config),
            router=ShardRouter(partition),
            tracer=tracer,
        )
        with engine:
            ctx = tracer.start_trace("request")
            engine.solve_batch([PPRQuery(seed=7, k=20)], [ctx])
            ctx.finish()
        tree = tracer.traces()[0]
        extracts = [s for s in tree["spans"] if s["name"] == "extract"]
        assert extracts
        for span in extracts:
            assert span["attributes"]["shard_id"] in (0, 1)
            assert isinstance(span["attributes"]["halo_fallback"], bool)

    def test_unsampled_batch_entries_trace_nothing(self, small_ba_graph, config):
        tracer = Tracer(sample_rate=1.0)
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config), tracer=tracer)
        queries = [PPRQuery(seed=s, k=20) for s in (3, 11)]
        with engine:
            ctx = tracer.start_trace("request")
            # Mixed batch: one traced, one untraced (context None).
            results = engine.solve_batch(queries, [ctx, None])
            ctx.finish()
        assert len(results) == 2
        tree = tracer.traces()[0]
        engine_spans = [s for s in tree["spans"] if s["name"] == "engine.query"]
        assert len(engine_spans) == 1
        assert engine_spans[0]["attributes"]["seed"] == 3


class TestProcessPoolAcceptance:
    def test_connected_span_tree_across_workers_and_shards(
        self, small_ba_graph, config
    ):
        """The PR's acceptance path: TCP request → admission → batcher →
        engine → process:2 workers over a 2-shard router, one connected
        span tree with worker-side spans re-parented across the IPC
        boundary, exported as valid Chrome trace-event JSON."""
        tracer = Tracer(sample_rate=1.0)
        partition = partition_graph(
            small_ba_graph, 2, strategy="hash", halo_depth=3
        )
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph, config),
            backend=ProcessPoolBackend(num_workers=2),
            router=ShardRouter(partition),
            tracer=tracer,
        )

        async def run():
            batcher = MicroBatcher(
                engine,
                BatchPolicy(max_batch_size=4, max_wait_ms=1.0),
                AdmissionController(max_pending=16),
            )
            await batcher.start()
            server = AsyncQueryServer(batcher)
            host, port = await server.start()
            client = await AsyncClient.connect(host, port)
            try:
                answer = await client.request(
                    {"op": "query", "seed": 11, "k": 20}
                )
                traces = await client.request({"op": "traces"})
                return answer, traces
            finally:
                await client.close()
                await server.stop()
                await batcher.stop()

        with engine:
            answer, traces = asyncio.run(run())

        assert answer["ok"] is True
        assert answer["trace_id"] == traces["traces"][-1]["trace_id"]
        tree = traces["traces"][-1]
        assert_connected(tree)

        names = span_names(tree)
        assert names[0] == "request"
        for required in (
            "admission.queue",
            "batcher.batch",
            "engine.query",
            "engine.stage",
            "worker.task",
        ):
            assert required in names, f"missing {required} in {names}"

        spans = {s["span_id"]: s for s in tree["spans"]}
        stage_ids = {
            s["span_id"] for s in tree["spans"] if s["name"] == "engine.stage"
        }
        workers = [s for s in tree["spans"] if s["name"] == "worker.task"]
        assert workers
        for task in workers:
            # Re-parented under the stage span that issued the IPC round.
            assert task["parent_id"] in stage_ids
            assert task["attributes"]["shard_id"] in (0, 1)
            assert task["attributes"]["worker_pid"] == task["pid"]
        # Worker spans really come from other processes.
        parent_pid = tree["spans"][0]["pid"]
        assert any(task["pid"] != parent_pid for task in workers)
        # Child worker spans link to their task inside the same tree.
        for span in tree["spans"]:
            if span["name"] in ("worker.extract", "worker.diffusion"):
                assert spans[span["parent_id"]]["name"] == "worker.task"

        doc = tracer.perfetto()
        count = validate_trace_events(doc)
        assert count > len(tree["spans"])  # spans + process_name metadata
        labels = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "serving" in labels
        assert any(label.startswith("worker-") for label in labels)

        stats = engine.stats()
        assert stats.tracing is not None
        assert stats.tracing.finished >= 1
        assert stats.tracing.spans >= len(tree["spans"])


class TestCrossTransportPropagation:
    def test_supplied_traceparent_id_returns_from_both_transports(
        self, small_ba_graph, config
    ):
        """An externally supplied traceparent (sampled flag set) forces a
        trace under the supplied id over TCP and HTTP alike — with local
        sampling off, so the only way the id can appear is propagation."""
        tracer = Tracer(sample_rate=0.0)
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config), tracer=tracer)
        tcp_trace = make_trace_id()
        http_trace = make_trace_id()

        async def run():
            batcher = MicroBatcher(engine)
            await batcher.start()
            tcp_server = AsyncQueryServer(batcher)
            http_server = HttpQueryServer(batcher)
            tcp_host, tcp_port = await tcp_server.start()
            http_host, http_port = await http_server.start()
            tcp_client = await AsyncClient.connect(tcp_host, tcp_port)
            http_client = await HttpClient(http_host, http_port).connect()
            try:
                tcp_answer = await tcp_client.request(
                    {
                        "op": "query",
                        "seed": 3,
                        "k": 10,
                        "trace": format_traceparent(
                            tcp_trace, make_span_id(), sampled=True
                        ),
                    }
                )
                status, _, raw = await http_client.request(
                    "POST",
                    "/query",
                    {"seed": 5, "k": 10},
                    headers={
                        "traceparent": format_traceparent(
                            http_trace, make_span_id(), sampled=True
                        )
                    },
                )
                untraced = await tcp_client.request(
                    {"op": "query", "seed": 7, "k": 10}
                )
                return tcp_answer, status, json.loads(raw), untraced
            finally:
                await tcp_client.close()
                await http_client.close()
                await tcp_server.stop()
                await http_server.stop()
                await batcher.stop()

        with engine:
            tcp_answer, http_status, http_answer, untraced = asyncio.run(run())

        assert tcp_answer["ok"] and http_status == 200 and http_answer["ok"]
        assert tcp_answer["trace_id"] == tcp_trace
        assert http_answer["trace_id"] == http_trace
        # Local sampling is off: the un-annotated query records nothing.
        assert "trace_id" not in untraced

        recorded = {tree["trace_id"]: tree for tree in tracer.traces()}
        assert set(recorded) == {tcp_trace, http_trace}
        assert recorded[tcp_trace]["spans"][0]["attributes"]["transport"] == "tcp"
        assert recorded[http_trace]["spans"][0]["attributes"]["transport"] == "http"
        for tree in recorded.values():
            assert_connected(tree)
            assert "engine.query" in span_names(tree)


class TestDebugEndpoints:
    def serve_http(self, engine):
        class _Stack:
            async def __aenter__(self):
                self.batcher = MicroBatcher(engine)
                await self.batcher.start()
                self.server = HttpQueryServer(self.batcher)
                host, port = await self.server.start()
                self.client = await HttpClient(host, port).connect()
                return self.client

            async def __aexit__(self, exc_type, exc, traceback):
                await self.client.close()
                await self.server.stop()
                await self.batcher.stop()

        return _Stack()

    def test_debug_traces_and_perfetto_round_trip(self, small_ba_graph, config):
        tracer = Tracer(sample_rate=1.0)
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config), tracer=tracer)

        async def run():
            async with self.serve_http(engine) as client:
                status, answer = await client.query({"seed": 3, "k": 10})
                assert status == 200 and answer["ok"]
                plain = await client.request_json("GET", "/debug/traces")
                perfetto = await client.request_json(
                    "GET", "/debug/traces/perfetto"
                )
                return answer, plain, perfetto

        with engine:
            answer, (plain_status, plain), (perf_status, perfetto) = (
                asyncio.run(run())
            )

        assert plain_status == 200 and plain["ok"]
        assert plain["stats"]["finished"] == 1
        assert [t["trace_id"] for t in plain["traces"]] == [answer["trace_id"]]
        assert perf_status == 200
        # The scraped body is exactly what Perfetto loads: validate it as
        # parsed from the wire, not from in-process state.
        assert validate_trace_events(perfetto) > 0

    def test_debug_endpoints_404_without_a_tracer(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            async with self.serve_http(engine) as client:
                return (
                    await client.request_json("GET", "/debug/traces"),
                    await client.request_json("GET", "/debug/traces/perfetto"),
                )

        with engine:
            (status, body), (perf_status, perf_body) = asyncio.run(run())
        assert status == 404 and perf_status == 404
        assert "trace-sample" in body["message"]
        assert perf_body["error"] == "not_found"

    def test_tcp_traces_op_without_tracer_is_a_bad_request(
        self, small_ba_graph, config
    ):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))

        async def run():
            batcher = MicroBatcher(engine)
            await batcher.start()
            server = AsyncQueryServer(batcher)
            host, port = await server.start()
            client = await AsyncClient.connect(host, port)
            try:
                return await client.request({"op": "traces"})
            finally:
                await client.close()
                await server.stop()
                await batcher.stop()

        with engine:
            answer = asyncio.run(run())
        assert answer["ok"] is False
        assert "tracing is disabled" in answer["message"]


class TestRequestLog:
    def test_one_jsonl_line_per_request_with_trace_id(
        self, small_ba_graph, config
    ):
        tracer = Tracer(sample_rate=1.0)
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config), tracer=tracer)
        logger = configure_logging("info", json_mode=True)
        stream = io.StringIO()
        logger.handlers[0].setStream(stream)

        async def run():
            batcher = MicroBatcher(engine)
            await batcher.start()
            server = AsyncQueryServer(batcher)
            host, port = await server.start()
            client = await AsyncClient.connect(host, port)
            try:
                return await asyncio.gather(
                    client.request({"op": "query", "seed": 3, "k": 10}),
                    client.request({"op": "query", "seed": 5, "k": 10}),
                )
            finally:
                await client.close()
                await server.stop()
                await batcher.stop()

        try:
            with engine:
                answers = asyncio.run(run())
        finally:
            configure_logging()  # restore the default (warning, plain)

        lines = [
            json.loads(line)
            for line in stream.getvalue().strip().splitlines()
        ]
        assert len(lines) == 2  # exactly one line per answered query
        by_seed = {line["seed"]: line for line in lines}
        for answer in answers:
            line = by_seed[answer["seed"]]
            assert line["transport"] == "tcp"
            assert line["status"] == "ok"
            assert line["latency_ms"] >= 0.0
            assert line["trace_id"] == answer["trace_id"]
            assert line["level"] == "info"

    def test_default_level_logs_nothing(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        logger = configure_logging()  # warning: per-request lines disabled
        stream = io.StringIO()
        logger.handlers[0].setStream(stream)

        async def run():
            batcher = MicroBatcher(engine)
            await batcher.start()
            server = AsyncQueryServer(batcher)
            host, port = await server.start()
            client = await AsyncClient.connect(host, port)
            try:
                return await client.request({"op": "query", "seed": 3, "k": 10})
            finally:
                await client.close()
                await server.stop()
                await batcher.stop()

        with engine:
            answer = asyncio.run(run())
        assert answer["ok"]
        assert stream.getvalue() == ""

    def test_configure_logging_rejects_unknown_level(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("loud")


class TestDisabledOverhead:
    def test_no_tracer_and_rate_zero_paths_match(self, small_ba_graph, config):
        """The overhead guard, test-sized: with sampling off the serving
        path must not slow down measurably.  Min-of-repeats throughput with
        a rate-0 tracer attached stays within 10% of the no-tracer build
        (the full-workload guard with a tighter budget runs in
        ``benchmarks/bench_tracing.py``)."""
        queries = [PPRQuery(seed=s % 60, k=20) for s in range(24)]

        def best_seconds(tracer):
            engine = QueryEngine(
                MeLoPPRSolver(small_ba_graph, config),
                cache=SubgraphCache(),
                tracer=tracer,
            )
            with engine:
                engine.solve_batch(queries)  # warm caches + code paths
                best = float("inf")
                for _ in range(5):
                    start = time.perf_counter()
                    engine.solve_batch(queries)
                    best = min(best, time.perf_counter() - start)
            return best

        baseline = best_seconds(None)
        disabled = best_seconds(Tracer(sample_rate=0.0))
        assert disabled <= baseline * 1.10, (
            f"rate-0 tracer cost {disabled / baseline - 1:.1%} "
            f"({disabled * 1e3:.2f}ms vs {baseline * 1e3:.2f}ms)"
        )
