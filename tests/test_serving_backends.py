"""Execution-backend lifecycle tests and the make_backend registry.

Covers the contract pieces the engine relies on but never exercises
directly: ``close()`` idempotency, context-manager shutdown, exception
propagation from a failing job through ``map``, submission-order results
under concurrency, and lazy re-creation after close.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.serving import (
    ExecutionBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)
from repro.serving.frontend import AsyncBackend

BACKEND_FACTORIES = [
    SerialBackend,
    lambda: ThreadPoolBackend(2),
    lambda: AsyncBackend(2),
]
BACKEND_IDS = ["serial", "thread-pool", "async"]


@pytest.fixture(params=BACKEND_FACTORIES, ids=BACKEND_IDS)
def backend(request):
    instance = request.param()
    yield instance
    instance.close()


class TestLifecycle:
    def test_close_is_idempotent(self, backend):
        backend.map(lambda x: x + 1, [1, 2, 3])
        backend.close()
        backend.close()  # must not raise

    def test_close_before_first_use_is_clean(self, backend):
        backend.close()  # nothing was lazily created yet

    def test_context_manager_closes(self, backend):
        with backend as entered:
            assert entered is backend
            assert entered.map(lambda x: x * 2, [1, 2]) == [2, 4]
        # Held resources are gone (lazy state reset where there is any).
        if isinstance(backend, ThreadPoolBackend):
            assert backend._executor is None
        if isinstance(backend, AsyncBackend):
            assert backend._loop is None and backend._thread is None

    def test_map_after_close_recreates_resources(self, backend):
        backend.map(lambda x: x, [1])
        backend.close()
        assert backend.map(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_job_exception_propagates(self, backend):
        def explode(item):
            if item == 2:
                raise ValueError(f"boom on {item}")
            return item

        with pytest.raises(ValueError, match="boom on 2"):
            backend.map(explode, [1, 2, 3])
        # The backend survives a failing batch and keeps serving.
        assert backend.map(lambda x: x, [4, 5]) == [4, 5]

    def test_empty_batch(self, backend):
        assert backend.map(lambda x: x, []) == []

    def test_results_in_submission_order(self, backend):
        # Later jobs finish first under concurrency; order must still hold.
        def job(item):
            time.sleep(0.02 * (3 - item))
            return item * 10

        assert backend.map(job, [0, 1, 2, 3]) == [0, 10, 20, 30]


class TestThreadPoolBackend:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            ThreadPoolBackend(0)


class TestAsyncBackend:
    def test_rejects_nonpositive_concurrency(self):
        with pytest.raises(ValueError, match="max_concurrency"):
            AsyncBackend(0)

    def test_map_from_own_loop_raises(self):
        backend = AsyncBackend(2)
        try:
            backend.map(lambda x: x, [1])  # spin the loop up
            loop = backend._loop

            async def call_map_on_loop():
                return backend.map(lambda x: x, [1])

            future = asyncio.run_coroutine_threadsafe(call_map_on_loop(), loop)
            with pytest.raises(RuntimeError, match="deadlock"):
                future.result(timeout=5)
        finally:
            backend.close()

    def test_run_coroutine_awaitable_from_any_loop(self):
        backend = AsyncBackend(2)
        try:
            backend.map(lambda x: x, [0])  # create loop + pool

            async def drive():
                return await backend.run(lambda x: x * 3, [1, 2, 3])

            future = asyncio.run_coroutine_threadsafe(drive(), backend._loop)
            assert future.result(timeout=5) == [3, 6, 9]
        finally:
            backend.close()

    def test_run_before_any_map_respects_the_concurrency_bound(self):
        # run() must never fall back to the loop's default (unbounded)
        # executor just because map() has not created the pool yet.
        import threading

        backend = AsyncBackend(1)
        peak = {"value": 0, "current": 0}
        lock = threading.Lock()

        def job(item):
            with lock:
                peak["current"] += 1
                peak["value"] = max(peak["value"], peak["current"])
            time.sleep(0.02)
            with lock:
                peak["current"] -= 1
            return item

        try:
            results = asyncio.run(backend.run(job, list(range(4))))
            assert results == [0, 1, 2, 3]
            assert peak["value"] == 1, "jobs overlapped past max_concurrency=1"
        finally:
            backend.close()

    def test_close_drains_inflight_map_from_other_thread(self):
        # close() must behave like ThreadPoolExecutor.shutdown(wait=True):
        # a batch already in flight finishes and its mapping thread returns.
        import threading

        backend = AsyncBackend(2)
        results = {}

        def mapper():
            results["value"] = backend.map(
                lambda x: (time.sleep(0.05), x * 2)[1], [1, 2, 3]
            )

        try:
            thread = threading.Thread(target=mapper)
            thread.start()
            time.sleep(0.02)  # batch is now in flight
            backend.close()
            thread.join(timeout=5)
            assert not thread.is_alive(), "map() hung across close()"
            assert results["value"] == [2, 4, 6]
        finally:
            backend.close()

    def test_concurrent_flag_and_name(self):
        backend = AsyncBackend()
        assert backend.concurrent is True
        assert backend.name == "async"
        assert "AsyncBackend" in repr(backend)
        backend.close()


class TestMakeBackend:
    def test_serial(self):
        assert isinstance(make_backend("serial"), SerialBackend)

    def test_none_means_serial(self):
        assert isinstance(make_backend(None), SerialBackend)

    @pytest.mark.parametrize("spec", ["thread", "threads", "thread-pool"])
    def test_thread_aliases(self, spec):
        backend = make_backend(spec)
        assert isinstance(backend, ThreadPoolBackend)
        assert backend.max_workers is None
        backend.close()

    def test_thread_with_workers(self):
        backend = make_backend("thread:8")
        assert isinstance(backend, ThreadPoolBackend)
        assert backend.max_workers == 8
        backend.close()

    def test_async_with_workers(self):
        backend = make_backend("async:4")
        assert isinstance(backend, AsyncBackend)
        assert backend.max_concurrency == 4
        backend.close()

    def test_spec_is_case_insensitive_and_trimmed(self):
        backend = make_backend("  Thread:2 ")
        assert isinstance(backend, ThreadPoolBackend)
        assert backend.max_workers == 2
        backend.close()

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError, match="unknown backend spec"):
            make_backend("fpga")

    def test_serial_with_workers_raises(self):
        with pytest.raises(ValueError, match="serial backend takes no"):
            make_backend("serial:2")

    def test_non_integer_worker_count_raises(self):
        with pytest.raises(ValueError, match="non-integer"):
            make_backend("thread:many")

    def test_nonpositive_worker_count_raises(self):
        with pytest.raises(ValueError, match="max_workers"):
            make_backend("thread:0")

    def test_registry_backends_satisfy_interface(self):
        for spec in ("serial", "thread:2", "async:2"):
            backend = make_backend(spec)
            assert isinstance(backend, ExecutionBackend)
            assert backend.map(lambda x: x + 1, [1, 2]) == [2, 3]
            backend.close()
