"""Concurrency stress tests: the serving caches and engine under contention.

Many threads hammer a cache (:class:`SubgraphCache`, :class:`ShardRouter`,
or the cross-query :class:`ScoreTableCache`) with a byte budget small enough
that entries are constantly evicted, which is where LRU bookkeeping bugs
(double-counted bytes, lost evictions, counter drift) live.  After the storm
the cache's invariants must hold exactly: ``current_bytes`` equals the sum
of the retained entries' sizes, the budget is respected, and
``hits + misses`` equals the number of lookups the threads actually
performed.  The engine-level storms additionally reconcile
``EngineStats`` — queries served, batches, latency samples and the merged
cache counters must account for every operation with no under- or
over-count.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.graph.bfs import extract_ego_subgraph
from repro.graph.partition import partition_graph
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving import QueryEngine, ScoreTableCache, ShardRouter, SubgraphCache
from repro.serving.result_cache import _entry_nbytes as result_entry_nbytes

NUM_THREADS = 8
OPS_PER_THREAD = 60
JOIN_TIMEOUT_SECONDS = 60.0


def run_threads(worker):
    """Run ``worker(thread_index)`` on NUM_THREADS threads; fail on deadlock."""
    errors = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(index,), daemon=True)
        for index in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT_SECONDS)
    stuck = [thread for thread in threads if thread.is_alive()]
    assert not stuck, f"{len(stuck)} threads still running — deadlock"
    assert not errors, f"worker raised: {errors[0]!r}"


def tiny_budget(graph, centers, depth=2, entries=2):
    """A byte budget that fits only ~``entries`` of the given extractions."""
    from repro.serving.cache import _entry_nbytes

    sizes = [
        _entry_nbytes(*extract_ego_subgraph(graph, center, depth))
        for center in centers
    ]
    return max(max(sizes), entries * (sum(sizes) // len(sizes)))


class TestSubgraphCacheStress:
    def test_thrashing_cache_keeps_invariants(self, small_ba_graph):
        centers = list(range(0, small_ba_graph.num_nodes, 7))
        cache = SubgraphCache(max_bytes=tiny_budget(small_ba_graph, centers))

        def worker(index):
            for step in range(OPS_PER_THREAD):
                center = centers[(index * 31 + step * 7) % len(centers)]
                subgraph, _, _ = cache.get_or_extract(small_ba_graph, center, 2)
                assert subgraph.contains_global(center)

        run_threads(worker)

        cache.validate()
        stats = cache.stats
        # Every get_or_extract performs exactly one counted lookup.
        assert stats.hits + stats.misses == stats.lookups
        assert stats.lookups == NUM_THREADS * OPS_PER_THREAD
        # The tiny budget must have forced real evictions (the stress point).
        assert stats.evictions > 0
        assert stats.current_bytes <= cache.max_bytes
        assert stats.num_entries == len(cache)

    def test_mixed_get_put_thrashing(self, small_ba_graph):
        centers = list(range(0, small_ba_graph.num_nodes, 11))
        extractions = {
            center: extract_ego_subgraph(small_ba_graph, center, 2)
            for center in centers
        }
        cache = SubgraphCache(max_bytes=tiny_budget(small_ba_graph, centers))
        lookups = [0] * NUM_THREADS

        def worker(index):
            for step in range(OPS_PER_THREAD):
                center = centers[(index + step * 13) % len(centers)]
                if step % 3 == 0:
                    subgraph, bfs = extractions[center]
                    cache.put(center, 2, subgraph, bfs)
                else:
                    cache.get(center, 2)
                    lookups[index] += 1

        run_threads(worker)

        cache.validate()
        stats = cache.stats
        assert stats.hits + stats.misses == sum(lookups)
        assert stats.current_bytes <= cache.max_bytes


class TestShardRouterStress:
    def test_routed_extractions_under_contention(self, small_ba_graph):
        partition = partition_graph(small_ba_graph, 4, strategy="hash", halo_depth=2)
        centers = list(range(0, small_ba_graph.num_nodes, 5))
        budget = tiny_budget(small_ba_graph, centers)
        router = ShardRouter(partition, cache_bytes=budget)
        # Mix of shard-local depths and beyond-halo depths (fallback path).
        depths = [1, 2, 2, 3]

        def worker(index):
            for step in range(OPS_PER_THREAD):
                center = centers[(index * 17 + step) % len(centers)]
                depth = depths[(index + step) % len(depths)]
                subgraph, bfs, _ = router.extract(small_ba_graph, center, depth)
                assert bfs.source == center
                assert subgraph.contains_global(center)

        run_threads(worker)

        router.validate()
        stats = router.stats()
        total_ops = NUM_THREADS * OPS_PER_THREAD
        assert stats.local_extractions + stats.fallback_extractions == total_ops
        assert stats.fallback_extractions > 0  # depth-3 calls crossed the halo
        # Per-shard: the shard cache saw exactly the extractions routed to it.
        for shard_stats in stats.shards:
            cache_stats = shard_stats.cache
            assert cache_stats.hits + cache_stats.misses == shard_stats.local_extractions
            assert cache_stats.current_bytes <= budget
        fallback = stats.fallback_cache
        assert fallback.hits + fallback.misses == stats.fallback_extractions

    def test_router_concurrent_results_stay_correct(self, small_ba_graph):
        partition = partition_graph(small_ba_graph, 3, strategy="degree", halo_depth=2)
        router = ShardRouter(partition, cache_bytes=64 << 20)
        centers = list(range(0, small_ba_graph.num_nodes, 23))
        expected = {
            center: extract_ego_subgraph(small_ba_graph, center, 2)
            for center in centers
        }

        def worker(index):
            import numpy as np

            for step in range(OPS_PER_THREAD // 2):
                center = centers[(index + step) % len(centers)]
                subgraph, bfs, _ = router.extract(small_ba_graph, center, 2)
                want_sub, want_bfs = expected[center]
                assert np.array_equal(subgraph.global_ids, want_sub.global_ids)
                assert np.array_equal(subgraph.graph.indptr, want_sub.graph.indptr)
                assert np.array_equal(subgraph.graph.indices, want_sub.graph.indices)
                assert bfs.edges_scanned == want_bfs.edges_scanned

        run_threads(worker)
        router.validate()


class TestCacheValidate:
    def test_validate_detects_corruption(self, small_ba_graph):
        cache = SubgraphCache(max_bytes=64 << 20)
        cache.get_or_extract(small_ba_graph, 0, 2)
        cache._current_bytes += 1  # simulate bookkeeping drift
        with pytest.raises(AssertionError):
            cache.validate()


def zipf_seeds(num_candidates, num_draws, skew=1.1, rng=7):
    """A Zipf-skewed hot-seed stream over ``num_candidates`` seeds."""
    ranks = np.arange(1, num_candidates + 1, dtype=np.float64)
    probabilities = ranks**-skew
    probabilities /= probabilities.sum()
    generator = np.random.default_rng(rng)
    return generator.choice(num_candidates, size=num_draws, p=probabilities)


class TestScoreTableCacheStress:
    """Threads hammer one engine's result cache while it evicts constantly."""

    def test_zipf_hammer_under_tiny_budget(self, small_ba_graph):
        # Budget ~2 entries: the Zipf tail forces constant eviction while
        # the hot head keeps re-installing — the LRU bookkeeping stress point.
        probe_cache = ScoreTableCache()
        probe_engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph), result_cache=probe_cache
        )
        probe_engine.solve_batch([PPRQuery(seed=0, k=20, length=6)])
        probe_engine.close()
        (entry,) = probe_cache._entries.values()
        budget = 2 * result_entry_nbytes(entry[0])

        cache = ScoreTableCache(max_bytes=budget)
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph),
            cache=SubgraphCache(),
            result_cache=cache,
        )
        centers = list(range(0, small_ba_graph.num_nodes, 7))
        streams = [
            zipf_seeds(len(centers), OPS_PER_THREAD, rng=100 + index)
            for index in range(NUM_THREADS)
        ]

        def worker(index):
            for pick in streams[index]:
                query = PPRQuery(seed=centers[int(pick)], k=20, length=6)
                (result,) = engine.solve_batch([query])
                assert result.metadata["serving"]["result_cache"] in (
                    "hit",
                    "miss",
                )

        try:
            run_threads(worker)
        finally:
            engine.close()

        cache.validate()
        stats = engine.stats()
        total_ops = NUM_THREADS * OPS_PER_THREAD
        # No under/over-count anywhere: every query consulted the cache
        # exactly once, and the engine accumulator saw every batch.
        assert stats.queries_served == total_ops
        assert stats.batches == total_ops
        rc = stats.result_cache
        assert rc.hits + rc.misses == rc.lookups == total_ops
        # The tiny budget must have forced real evictions (the stress point).
        assert rc.evictions > 0
        assert rc.current_bytes <= cache.max_bytes
        # The engine-level aggregate folds sub-graph + result counters; the
        # totals must reconcile exactly once the engine is quiesced.
        subgraph_stats = engine.cache.stats
        assert stats.cache.hits == subgraph_stats.hits + rc.hits
        assert stats.cache.misses == subgraph_stats.misses + rc.misses

    def test_direct_put_get_thrash_keeps_invariants(self, small_ba_graph):
        # Container-level storm: concurrent put/get/invalidate on shared
        # states with a budget of ~2 entries.
        solver = MeLoPPRSolver(small_ba_graph)
        centers = list(range(0, small_ba_graph.num_nodes, 11))
        from repro.meloppr.planner import execute_stage_task
        from repro.serving import stage_one_cache_key

        entries = {}
        for center in centers:
            plan = solver.plan(PPRQuery(seed=center, k=20), track_memory=False)
            key = stage_one_cache_key(plan)
            plan.complete_stage(
                execute_stage_task(plan.graph, task, timing=plan.timing)
                for task in plan.pending_tasks
            )
            entries[center] = (key, plan.stage_one_state())
            plan.close()
        budget = 2 * max(
            result_entry_nbytes(state) for _, state in entries.values()
        )
        cache = ScoreTableCache(max_bytes=budget)
        lookups = [0] * NUM_THREADS

        def worker(index):
            for step in range(OPS_PER_THREAD):
                center = centers[(index * 31 + step * 7) % len(centers)]
                key, state = entries[center]
                if step % 3 == 0:
                    cache.put(key, state)
                elif step % 7 == 0:
                    cache.invalidate(key)
                else:
                    cache.get(key)
                    lookups[index] += 1

        run_threads(worker)
        cache.validate()
        stats = cache.stats
        assert stats.hits + stats.misses == sum(lookups)
        assert stats.current_bytes <= budget


class TestEngineStatsConcurrency:
    """solve_batch from many threads must never drop or double a counter."""

    def test_concurrent_batches_count_exactly(self, small_ba_graph):
        engine = QueryEngine(
            MeLoPPRSolver(small_ba_graph),
            cache=SubgraphCache(),
            result_cache=ScoreTableCache(),
        )
        batch = [PPRQuery(seed=seed, k=15, length=6) for seed in (3, 9, 3)]

        def worker(index):
            for _ in range(OPS_PER_THREAD // 4):
                engine.solve_batch(batch)

        try:
            run_threads(worker)
        finally:
            engine.close()
        stats = engine.stats()
        batches = NUM_THREADS * (OPS_PER_THREAD // 4)
        assert stats.batches == batches
        assert stats.queries_served == batches * len(batch)
        assert stats.latency.count == batches * len(batch)
        assert stats.result_cache.lookups == batches * len(batch)
