"""Tests for repro.diffusion.transition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.transition import TransitionOperator
from repro.graph.builder import GraphBuilder


class TestApply:
    def test_matches_explicit_matrix(self, small_ba_graph, rng):
        operator = TransitionOperator(small_ba_graph)
        matrix = operator.matrix()
        vector = rng.random(small_ba_graph.num_nodes)
        np.testing.assert_allclose(operator.apply(vector), matrix @ vector, atol=1e-12)

    def test_preserves_mass_on_connected_graph(self, triangle_graph):
        operator = TransitionOperator(triangle_graph)
        vector = np.array([1.0, 0.0, 0.0])
        result = operator.apply(vector)
        assert result.sum() == pytest.approx(1.0)

    def test_star_center_spreads_uniformly(self, star_graph):
        operator = TransitionOperator(star_graph)
        vector = np.zeros(7)
        vector[0] = 1.0
        result = operator.apply(vector)
        np.testing.assert_allclose(result[1:], np.full(6, 1.0 / 6.0))
        assert result[0] == 0.0

    def test_isolated_node_loses_mass(self):
        graph = GraphBuilder(num_nodes=3).add_edge(0, 1).build()
        operator = TransitionOperator(graph)
        vector = np.array([0.0, 0.0, 1.0])
        assert operator.apply(vector).sum() == 0.0

    def test_wrong_shape_rejected(self, triangle_graph):
        operator = TransitionOperator(triangle_graph)
        with pytest.raises(ValueError):
            operator.apply(np.zeros(5))

    def test_fig1_example_first_propagation(self, fig1_graph):
        """Fig. 1: W S0 = [0, 1/3, 1/3, 1/3] for the 4-node example."""
        operator = TransitionOperator(fig1_graph)
        s0 = np.array([1.0, 0.0, 0.0, 0.0])
        np.testing.assert_allclose(
            operator.apply(s0), [0.0, 1 / 3, 1 / 3, 1 / 3], atol=1e-12
        )

    def test_fig1_example_second_propagation(self, fig1_graph):
        """Fig. 1: W^2 S0 = [1, 0, 0, 0] — all leaves point back to the seed."""
        operator = TransitionOperator(fig1_graph)
        s0 = np.array([1.0, 0.0, 0.0, 0.0])
        np.testing.assert_allclose(operator.apply_power(s0, 2), [1.0, 0, 0, 0], atol=1e-12)


class TestApplySparse:
    def test_matches_dense_apply(self, small_ba_graph, rng):
        operator = TransitionOperator(small_ba_graph)
        dense = np.zeros(small_ba_graph.num_nodes)
        chosen = rng.choice(small_ba_graph.num_nodes, 10, replace=False)
        dense[chosen] = rng.random(10)
        nodes, values = operator.apply_sparse(chosen, dense[chosen])
        rebuilt = np.zeros_like(dense)
        rebuilt[nodes] = values
        np.testing.assert_allclose(rebuilt, operator.apply(dense), atol=1e-12)

    def test_empty_input(self, triangle_graph):
        operator = TransitionOperator(triangle_graph)
        nodes, values = operator.apply_sparse(np.array([]), np.array([]))
        assert nodes.size == 0
        assert values.size == 0

    def test_zero_values_skipped(self, triangle_graph):
        operator = TransitionOperator(triangle_graph)
        nodes, values = operator.apply_sparse(np.array([0]), np.array([0.0]))
        assert nodes.size == 0

    def test_mismatched_shapes_rejected(self, triangle_graph):
        operator = TransitionOperator(triangle_graph)
        with pytest.raises(ValueError):
            operator.apply_sparse(np.array([0, 1]), np.array([1.0]))


class TestApplyPower:
    def test_power_zero_is_identity(self, triangle_graph, rng):
        operator = TransitionOperator(triangle_graph)
        vector = rng.random(3)
        np.testing.assert_allclose(operator.apply_power(vector, 0), vector)

    def test_power_matches_repeated_apply(self, small_ba_graph, rng):
        operator = TransitionOperator(small_ba_graph)
        vector = rng.random(small_ba_graph.num_nodes)
        twice = operator.apply(operator.apply(vector))
        np.testing.assert_allclose(operator.apply_power(vector, 2), twice, atol=1e-12)

    def test_negative_power_rejected(self, triangle_graph):
        operator = TransitionOperator(triangle_graph)
        with pytest.raises(ValueError):
            operator.apply_power(np.zeros(3), -1)

    def test_columns_are_stochastic(self, small_citation_graph):
        matrix = TransitionOperator(small_citation_graph).matrix()
        column_sums = np.asarray(matrix.sum(axis=0)).ravel()
        degrees = small_citation_graph.degrees()
        np.testing.assert_allclose(column_sums[degrees > 0], 1.0, atol=1e-12)
