"""Protocol-abuse suite shared across the TCP and HTTP front doors.

One malformed-payload corpus is pushed through *both* transports; every
abuse must produce a typed error (``bad_request`` over TCP, the mapped
status code over HTTP) — never a silently dropped connection — and the
server must keep answering correct queries afterwards.  A second group
abuses the HTTP framing itself (bad request lines, bad Content-Length,
chunked bodies, oversized payloads), and a third proves a mid-batch client
disconnect cannot poison the answers of the queries batched alongside it.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.diffusion.sparse_vector import SparseScoreVector
from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery, PPRResult, PPRSolver
from repro.serving import QueryEngine
from repro.serving.frontend import (
    AsyncQueryServer,
    BatchPolicy,
    HttpClient,
    HttpQueryServer,
    MicroBatcher,
)


@pytest.fixture()
def config():
    return MeLoPPRConfig(stage_lengths=(3, 3), track_memory=False)


class SleepySolver(PPRSolver):
    name = "sleepy"

    def __init__(self, graph, delay_seconds: float) -> None:
        super().__init__(graph)
        self.delay_seconds = delay_seconds

    def solve(self, query: PPRQuery) -> PPRResult:
        time.sleep(self.delay_seconds)
        return PPRResult(query=query, scores=SparseScoreVector({query.seed: 1.0}))


def both_servers(engine, policy=None):
    """Async context: one batcher serving a TCP *and* an HTTP front door."""

    class _Stack:
        async def __aenter__(self):
            self.batcher = MicroBatcher(engine, policy)
            await self.batcher.start()
            self.tcp = AsyncQueryServer(self.batcher)
            self.http = HttpQueryServer(self.batcher)
            tcp_addr = await self.tcp.start()
            http_addr = await self.http.start()
            return tcp_addr, http_addr

        async def __aexit__(self, exc_type, exc, traceback):
            await self.tcp.stop()
            await self.http.stop()
            await self.batcher.stop()

    return _Stack()


async def tcp_exchange(addr, payload: bytes) -> dict:
    """One raw JSON-lines exchange; returns the server's parsed answer."""
    reader, writer = await asyncio.open_connection(*addr)
    try:
        writer.write(payload + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=5)
        assert line, "server dropped the connection without answering"
        return json.loads(line)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def http_raw_exchange(addr, request: bytes) -> bytes:
    """Send raw bytes, return the raw response (up to connection close)."""
    reader, writer = await asyncio.open_connection(*addr)
    try:
        writer.write(request)
        await writer.drain()
        return await asyncio.wait_for(reader.read(), timeout=5)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def http_post_query(body: bytes, extra_headers: bytes = b"") -> bytes:
    return (
        b"POST /query HTTP/1.1\r\nHost: t\r\n"
        b"Content-Length: " + str(len(body)).encode() + b"\r\n"
        + extra_headers
        + b"Connection: close\r\n\r\n"
        + body
    )


def status_of(raw: bytes) -> int:
    assert raw.startswith(b"HTTP/1.1 "), raw[:40]
    return int(raw.split(b" ", 2)[1])


async def assert_still_serving(tcp_addr, http_addr, expected_top) -> None:
    """After any abuse, both transports still answer correctly."""
    answer = await tcp_exchange(tcp_addr, json.dumps({"seed": 3, "k": 10}).encode())
    assert answer["ok"] is True and answer["top"] == expected_top
    async with HttpClient(*http_addr) as client:
        status, body = await client.query({"seed": 3, "k": 10})
    assert status == 200 and body["top"] == expected_top


# The shared corpus: payload (as a dict or raw JSON value) plus a fragment
# the error message must mention.  Each entry is sent to both transports.
MALFORMED_BODIES = [
    pytest.param([1, 2, 3], "object", id="json-array"),
    pytest.param("a string", "object", id="json-string"),
    pytest.param(42, "object", id="json-number"),
    pytest.param({"k": 10}, "seed", id="missing-seed"),
    pytest.param({"seed": True, "k": 10}, "seed", id="bool-seed"),
    pytest.param({"seed": 3, "k": True}, "k", id="bool-k"),
    pytest.param({"seed": 3.5, "k": 10}, "seed", id="float-seed"),
    pytest.param({"seed": -1, "k": 10}, "", id="negative-seed"),
    pytest.param({"seed": 10**9, "k": 10}, "", id="out-of-range-seed"),
    pytest.param({"seed": 3, "k": 10, "timeout_ms": "fast"}, "timeout_ms", id="string-timeout"),
    pytest.param({"seed": 3, "k": 10, "timeout_ms": True}, "timeout_ms", id="bool-timeout"),
    pytest.param({"seed": 3, "k": 10, "timeout_ms": -5}, "timeout_ms", id="negative-timeout"),
]


class TestSharedMalformedBodies:
    """The same abusive payloads through both front doors."""

    @pytest.fixture()
    def stack(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        expected = [
            [int(n), float(s)]
            for n, s in engine.solve_batch([PPRQuery(seed=3, k=10)])[0].top_k()
        ]
        yield engine, expected
        engine.close()

    @pytest.mark.parametrize("payload, fragment", MALFORMED_BODIES)
    def test_typed_error_on_both_transports(self, stack, payload, fragment):
        engine, expected = stack

        async def run():
            async with both_servers(engine) as (tcp_addr, http_addr):
                raw = json.dumps(payload).encode("utf-8")

                tcp_answer = await tcp_exchange(tcp_addr, raw)
                assert tcp_answer["ok"] is False
                assert tcp_answer["error"] == "bad_request"
                assert fragment in tcp_answer["message"]

                http_raw = await http_raw_exchange(http_addr, http_post_query(raw))
                assert status_of(http_raw) == 400
                http_body = json.loads(http_raw.split(b"\r\n\r\n", 1)[1])
                assert http_body["ok"] is False
                assert http_body["error"] == "bad_request"
                assert fragment in http_body["message"]

                await assert_still_serving(tcp_addr, http_addr, expected)

        asyncio.run(run())

    def test_non_json_body_on_both_transports(self, stack):
        engine, expected = stack

        async def run():
            async with both_servers(engine) as (tcp_addr, http_addr):
                raw = b"{not json at all"
                tcp_answer = await tcp_exchange(tcp_addr, raw)
                assert tcp_answer["ok"] is False
                assert tcp_answer["error"] == "bad_request"

                http_raw = await http_raw_exchange(http_addr, http_post_query(raw))
                assert status_of(http_raw) == 400

                await assert_still_serving(tcp_addr, http_addr, expected)

        asyncio.run(run())

    def test_unknown_operation_is_typed_on_both(self, stack):
        engine, expected = stack

        async def run():
            async with both_servers(engine) as (tcp_addr, http_addr):
                tcp_answer = await tcp_exchange(
                    tcp_addr, json.dumps({"op": "frobnicate"}).encode()
                )
                assert tcp_answer["ok"] is False
                assert tcp_answer["error"] == "bad_request"
                assert "frobnicate" in tcp_answer["message"]

                # The HTTP analogue of an unknown op is an unknown path /
                # wrong method: 404 and 405, not a dropped connection.
                raw404 = await http_raw_exchange(
                    http_addr,
                    b"GET /frobnicate HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n",
                )
                assert status_of(raw404) == 404
                raw405 = await http_raw_exchange(
                    http_addr,
                    b"DELETE /query HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n",
                )
                assert status_of(raw405) == 405

                await assert_still_serving(tcp_addr, http_addr, expected)

        asyncio.run(run())

    def test_oversized_payload_on_both_transports(self, stack):
        engine, expected = stack

        async def run():
            async with both_servers(engine) as (tcp_addr, http_addr):
                # TCP: a line beyond the stream limit gets an explicit
                # answer, then the (unresynchronisable) connection closes.
                blob = b'{"seed": 3, "pad": "' + b"x" * (1 << 17) + b'"}'
                tcp_answer = await tcp_exchange(tcp_addr, blob)
                assert tcp_answer["ok"] is False
                assert tcp_answer["error"] == "bad_request"

                # HTTP: a body over the cap is refused from the declared
                # Content-Length alone — a 413 before the body is read (so
                # the abuser cannot make the server buffer it).
                http_raw = await http_raw_exchange(
                    http_addr,
                    b"POST /query HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: " + str((1 << 20) + 1).encode() + b"\r\n\r\n",
                )
                assert status_of(http_raw) == 413

                await assert_still_serving(tcp_addr, http_addr, expected)

        asyncio.run(run())


class TestHttpFramingAbuse:
    """Abuse aimed at the HTTP layer itself, below the JSON protocol."""

    @pytest.fixture()
    def stack(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        expected = [
            [int(n), float(s)]
            for n, s in engine.solve_batch([PPRQuery(seed=3, k=10)])[0].top_k()
        ]
        yield engine, expected
        engine.close()

    def run_case(self, stack, check):
        engine, expected = stack

        async def run():
            async with both_servers(engine) as (tcp_addr, http_addr):
                await check(http_addr)
                await assert_still_serving(tcp_addr, http_addr, expected)

        asyncio.run(run())

    def test_garbage_request_line(self, stack):
        async def check(addr):
            raw = await http_raw_exchange(addr, b"NOT AN HTTP REQUEST\r\n\r\n")
            assert status_of(raw) == 400

        self.run_case(stack, check)

    def test_unsupported_http_version(self, stack):
        async def check(addr):
            raw = await http_raw_exchange(
                addr, b"GET /healthz HTTP/2.0\r\n\r\n"
            )
            assert status_of(raw) == 400

        self.run_case(stack, check)

    def test_chunked_transfer_encoding_is_501(self, stack):
        async def check(addr):
            raw = await http_raw_exchange(
                addr,
                b"POST /query HTTP/1.1\r\nHost: t\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
                b"5\r\nhello\r\n0\r\n\r\n",
            )
            assert status_of(raw) == 501

        self.run_case(stack, check)

    def test_missing_content_length_on_post(self, stack):
        async def check(addr):
            raw = await http_raw_exchange(
                addr,
                b"POST /query HTTP/1.1\r\nHost: t\r\n"
                b"Connection: close\r\n\r\n",
            )
            # No body: parsed as an empty payload -> bad_request, not a hang.
            assert status_of(raw) == 400

        self.run_case(stack, check)

    @pytest.mark.parametrize(
        "value", [b"banana", b"-5", b"1e3"], ids=["text", "negative", "float"]
    )
    def test_invalid_content_length(self, stack, value):
        async def check(addr):
            raw = await http_raw_exchange(
                addr,
                b"POST /query HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: " + value + b"\r\n\r\n",
            )
            assert status_of(raw) == 400

        self.run_case(stack, check)

    def test_header_flood_is_rejected(self, stack):
        async def check(addr):
            flood = b"".join(
                b"X-Flood-%d: x\r\n" % i for i in range(200)
            )
            raw = await http_raw_exchange(
                addr,
                b"GET /healthz HTTP/1.1\r\nHost: t\r\n" + flood + b"\r\n",
            )
            assert status_of(raw) == 400

        self.run_case(stack, check)

    def test_disconnect_mid_body_is_silent(self, stack):
        """Client advertises a body then vanishes: no stack trace, no wedge."""

        async def check(addr):
            reader, writer = await asyncio.open_connection(*addr)
            writer.write(
                b"POST /query HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 1000\r\n\r\n" + b'{"seed"'
            )
            await writer.drain()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

        self.run_case(stack, check)

    def test_disconnect_before_request_is_silent(self, stack):
        async def check(addr):
            _, writer = await asyncio.open_connection(*addr)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

        self.run_case(stack, check)


class TestMidBatchDisconnect:
    """A client vanishing mid-batch must not poison its batchmates."""

    def test_tcp_disconnect_does_not_poison_batchmates(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.05))
        # A wide, patient policy so both queries land in one batch.
        policy = BatchPolicy(max_batch_size=8, max_wait_ms=50.0)

        async def run():
            async with both_servers(engine, policy) as (tcp_addr, _):
                # Victim submits a query, then disconnects immediately —
                # while its query is still queued/batching.
                _, victim_writer = await asyncio.open_connection(*tcp_addr)
                victim_writer.write(json.dumps({"seed": 1, "k": 5}).encode() + b"\n")
                await victim_writer.drain()

                survivor_reader, survivor_writer = await asyncio.open_connection(
                    *tcp_addr
                )
                survivor_writer.write(
                    json.dumps({"seed": 2, "k": 5}).encode() + b"\n"
                )
                await survivor_writer.drain()
                victim_writer.close()  # mid-batch disconnect

                line = await asyncio.wait_for(
                    survivor_reader.readline(), timeout=5
                )
                answer = json.loads(line)
                survivor_writer.close()
                return answer

        with engine:
            answer = asyncio.run(run())
        assert answer["ok"] is True
        assert answer["seed"] == 2
        assert answer["top"] == [[2, 1.0]]

    def test_http_disconnect_does_not_poison_batchmates(self, small_ba_graph):
        engine = QueryEngine(SleepySolver(small_ba_graph, delay_seconds=0.05))
        policy = BatchPolicy(max_batch_size=8, max_wait_ms=50.0)

        async def run():
            async with both_servers(engine, policy) as (_, http_addr):
                victim_reader, victim_writer = await asyncio.open_connection(
                    *http_addr
                )
                victim_writer.write(
                    http_post_query(json.dumps({"seed": 1, "k": 5}).encode())
                )
                await victim_writer.drain()

                async with HttpClient(*http_addr) as survivor:
                    task = asyncio.ensure_future(
                        survivor.query({"seed": 2, "k": 5})
                    )
                    await asyncio.sleep(0.005)
                    victim_writer.close()  # mid-batch disconnect
                    status, body = await task
                return status, body

        with engine:
            status, body = asyncio.run(run())
        assert status == 200
        assert body["ok"] is True
        assert body["top"] == [[2, 1.0]]
