"""Tests for the shard router: routing, per-shard caches, stats, engine wiring."""

from __future__ import annotations

import pytest

from repro.graph.partition import partition_graph
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery
from repro.serving import QueryEngine, ShardRouter, SubgraphCache


@pytest.fixture()
def partition(small_ba_graph):
    return partition_graph(small_ba_graph, 3, strategy="hash", halo_depth=3)


@pytest.fixture()
def router(partition):
    return ShardRouter(partition)


class TestRouting:
    def test_local_extraction_counted_per_owning_shard(self, small_ba_graph, partition, router):
        center = 7
        shard_id = partition.shard_of(center)
        router.extract(small_ba_graph, center, 2)
        stats = router.stats()
        assert stats.shards[shard_id].local_extractions == 1
        assert stats.local_extractions == 1
        assert stats.fallback_extractions == 0
        assert stats.fallback_rate == 0.0

    def test_deep_extraction_falls_back(self, small_ba_graph, partition, router):
        center = 7
        shard_id = partition.shard_of(center)
        router.extract(small_ba_graph, center, partition.halo_depth + 1)
        stats = router.stats()
        assert stats.shards[shard_id].fallback_extractions == 1
        assert stats.local_extractions == 0
        assert stats.fallback_rate == 1.0

    def test_repeat_extraction_hits_shard_cache(self, small_ba_graph, partition, router):
        center = 11
        shard_id = partition.shard_of(center)
        _, _, first_hit = router.extract(small_ba_graph, center, 2)
        _, _, second_hit = router.extract(small_ba_graph, center, 2)
        assert not first_hit and second_hit
        cache = router.cache_for(shard_id)
        assert cache is not None
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        # Other shards' caches were never touched.
        for other in range(partition.num_shards):
            if other != shard_id:
                assert router.cache_for(other).stats.lookups == 0

    def test_fallback_extraction_uses_fallback_cache(self, small_ba_graph, router):
        depth = router.partition.halo_depth + 1
        _, _, first_hit = router.extract(small_ba_graph, 7, depth)
        _, _, second_hit = router.extract(small_ba_graph, 7, depth)
        assert not first_hit and second_hit
        stats = router.stats()
        assert stats.fallback_cache is not None
        assert stats.fallback_cache.hits == 1

    def test_cache_disabled(self, small_ba_graph, partition):
        router = ShardRouter(partition, cache_bytes=None)
        assert not router.caching_enabled
        _, _, first_hit = router.extract(small_ba_graph, 7, 2)
        _, _, second_hit = router.extract(small_ba_graph, 7, 2)
        assert not first_hit and not second_hit
        stats = router.stats()
        assert stats.hit_rate == 0.0
        assert all(shard.cache is None for shard in stats.shards)

    def test_foreign_graph_rejected(self, router, small_citation_graph):
        with pytest.raises(ValueError):
            router.extract(small_citation_graph, 0, 2)

    def test_invalid_center_rejected(self, small_ba_graph, router):
        with pytest.raises(ValueError):
            router.extract(small_ba_graph, -1, 2)
        with pytest.raises(ValueError):
            router.extract(small_ba_graph, small_ba_graph.num_nodes, 2)

    def test_callable_alias(self, small_ba_graph, router):
        subgraph, bfs, hit = router(small_ba_graph, 3, 1)
        assert subgraph.contains_global(3)
        assert bfs.source == 3
        assert not hit


class TestRouterStats:
    def test_as_dict_shape(self, small_ba_graph, router):
        router.extract(small_ba_graph, 5, 2)
        router.extract(small_ba_graph, 5, router.partition.halo_depth + 2)
        payload = router.stats().as_dict()
        assert payload["num_shards"] == 3
        assert payload["local_extractions"] == 1
        assert payload["fallback_extractions"] == 1
        assert payload["fallback_rate"] == 0.5
        assert 0.0 <= payload["hit_rate"] <= 1.0
        assert len(payload["per_shard_hit_rates"]) == 3
        assert payload["halo_overhead_bytes"] >= 0
        assert len(payload["shards"]) == 3
        for shard in payload["shards"]:
            assert shard["cache"] is not None

    def test_validate_passes_after_traffic(self, small_ba_graph, router):
        for center in range(0, small_ba_graph.num_nodes, 9):
            router.extract(small_ba_graph, center, 2)
        router.validate()


class TestEngineIntegration:
    def test_router_and_cache_mutually_exclusive(self, small_ba_graph, router):
        solver = MeLoPPRSolver(small_ba_graph)
        with pytest.raises(ValueError):
            QueryEngine(solver, cache=SubgraphCache(), router=router)

    def test_engine_stats_carry_router_snapshot(self, small_ba_graph, router):
        solver = MeLoPPRSolver(small_ba_graph)
        queries = [PPRQuery(seed=seed, k=20) for seed in (3, 3, 9)]
        with QueryEngine(solver, router=router) as engine:
            assert engine.router is router
            engine.solve_batch(queries)
            stats = engine.stats()
        assert stats.router is not None
        assert stats.router.total_extractions > 0
        payload = stats.as_dict()
        assert payload["router"]["num_shards"] == 3

    def test_serving_metadata_reports_sharding(self, small_ba_graph, router):
        solver = MeLoPPRSolver(small_ba_graph)
        with QueryEngine(solver, router=router) as engine:
            (result,) = engine.solve_batch([PPRQuery(seed=3, k=20)])
        serving = result.metadata["serving"]
        assert serving["sharded"] is True
        assert serving["cache_enabled"] is True

    def test_unsharded_metadata_unchanged(self, small_ba_graph):
        solver = MeLoPPRSolver(small_ba_graph)
        with QueryEngine(solver) as engine:
            (result,) = engine.solve_batch([PPRQuery(seed=3, k=20)])
        serving = result.metadata["serving"]
        assert serving["sharded"] is False
        assert serving["cache_enabled"] is False


class TestRouterLiveUpdate:
    def test_update_radius_covers_caches_and_halo(self, small_ba_graph, partition):
        router = ShardRouter(partition, result_cache_bytes=1 << 20)
        assert router.update_radius() == partition.halo_depth
        # A deeper cached extraction raises the radius above the halo depth.
        router.extract(small_ba_graph, 7, partition.halo_depth + 2)
        assert router.update_radius() == partition.halo_depth + 2

    def test_apply_update_patches_and_invalidates(self, small_ba_graph, partition):
        import numpy as np
        from repro.graph.csr import CSRGraph
        from repro.graph.delta import DeltaGraph, update_distance_bound

        router = ShardRouter(partition, result_cache_bytes=1 << 20)
        for center in (3, 7, 11):
            router.extract(small_ba_graph, center, 2)
        delta = DeltaGraph(small_ba_graph)
        u, v = next(iter(small_ba_graph.iter_edges()))
        delta.delete_edge(u, v)
        new_graph = delta.compact()
        radius = router.update_radius()
        distances = update_distance_bound(
            small_ba_graph, new_graph, delta.touched_nodes(), radius
        )
        counts = router.apply_update(
            new_graph,
            small_ba_graph.fingerprint(),
            new_graph.fingerprint(),
            distances,
        )
        assert router.partition.host is new_graph
        assert counts["shards_rebuilt"] >= 1
        # Every patched shard really lost the deleted edge.
        for shard in router.partition.shards:
            members = set(shard.subgraph.global_ids.tolist())
            if u in members and v in members:
                assert not shard.subgraph.graph.has_edge(
                    shard.subgraph.to_local(u), shard.subgraph.to_local(v)
                )
        # Extractions against the new host serve without a foreign-graph error.
        router.extract(new_graph, 3, 2)
