"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, ensure_rng, sample_without_replacement, spawn_rngs


class TestEnsureRng:
    def test_none_gives_default_seeded_generator(self):
        a = ensure_rng(None)
        b = ensure_rng(None)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42)
        b = ensure_rng(42)
        assert np.array_equal(a.integers(0, 100, 10), b.integers(0, 100, 10))

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 2**31, 20)
        b = ensure_rng(2).integers(0, 2**31, 20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert ensure_rng(generator) is generator

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_default_seed_constant(self):
        assert isinstance(DEFAULT_SEED, int)


class TestSpawnRngs:
    def test_returns_requested_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_children_are_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 2**31, 10)
        b = children[1].integers(0, 2**31, 10)
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        first = [g.integers(0, 1000) for g in spawn_rngs(3, 4)]
        second = [g.integers(0, 1000) for g in spawn_rngs(3, 4)]
        assert first == second

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestSampleWithoutReplacement:
    def test_distinct_values(self):
        sample = sample_without_replacement(1, 100, 50)
        assert len(set(sample.tolist())) == 50

    def test_within_population(self):
        sample = sample_without_replacement(1, 10, 10)
        assert set(sample.tolist()) == set(range(10))

    def test_too_many_requested(self):
        with pytest.raises(ValueError):
            sample_without_replacement(1, 5, 6)
