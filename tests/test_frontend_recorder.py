"""Tests for the workload recorder/replayer (trace capture as JSONL)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.meloppr.config import MeLoPPRConfig
from repro.meloppr.solver import MeLoPPRSolver
from repro.ppr.base import PPRQuery, PPRResult
from repro.serving import QueryEngine
from repro.serving.frontend import (
    AdmissionController,
    AsyncClient,
    AsyncQueryServer,
    HttpClient,
    HttpQueryServer,
    MicroBatcher,
    QueryShedError,
    TraceRecord,
    WorkloadRecorder,
    load_trace,
    replay_trace_sync,
    save_trace,
)


@pytest.fixture()
def config():
    return MeLoPPRConfig(stage_lengths=(3, 3), track_memory=False)


class TestTraceRecord:
    def test_round_trip_via_dict(self):
        record = TraceRecord(
            offset_seconds=1.25, seed=7, k=50, alpha=0.85, length=6,
            timeout_ms=40.0,
        )
        assert TraceRecord.from_dict(record.as_dict()) == record

    def test_timeout_omitted_when_absent(self):
        record = TraceRecord(
            offset_seconds=0.0, seed=7, k=50, alpha=0.85, length=6
        )
        assert "timeout_ms" not in record.as_dict()
        assert TraceRecord.from_dict(record.as_dict()).timeout_ms is None

    def test_to_query(self):
        record = TraceRecord(
            offset_seconds=0.5, seed=7, k=50, alpha=0.9, length=4
        )
        query = record.to_query()
        assert query == PPRQuery(seed=7, k=50, alpha=0.9, length=4)

    @pytest.mark.parametrize(
        "mutation, message",
        [
            ({"offset_seconds": -0.1}, "offset_seconds"),
            ({"seed": "abc"}, "malformed"),
            ({"timeout_ms": 0}, "timeout_ms"),
            ({"timeout_ms": -5.0}, "timeout_ms"),
        ],
    )
    def test_from_dict_validation(self, mutation, message):
        base = {
            "offset_seconds": 0.0, "seed": 1, "k": 10,
            "alpha": 0.85, "length": 6,
        }
        base.update(mutation)
        with pytest.raises(ValueError, match=message):
            TraceRecord.from_dict(base)

    def test_from_dict_missing_field(self):
        with pytest.raises(ValueError, match="malformed"):
            TraceRecord.from_dict({"offset_seconds": 0.0, "seed": 1})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ValueError, match="object"):
            TraceRecord.from_dict([1, 2, 3])


class TestWorkloadRecorder:
    def test_offsets_are_relative_to_first_record(self):
        ticks = iter([100.0, 100.5, 102.25])
        recorder = WorkloadRecorder(clock=lambda: next(ticks))
        recorder.record_query(PPRQuery(seed=1, k=10))
        recorder.record_query(PPRQuery(seed=2, k=10), timeout_ms=30.0)
        recorder.record_query(PPRQuery(seed=3, k=10))
        records = recorder.records
        assert [r.offset_seconds for r in records] == [0.0, 0.5, 2.25]
        assert [r.seed for r in records] == [1, 2, 3]
        assert records[1].timeout_ms == 30.0
        assert records[0].timeout_ms is None
        assert len(recorder) == 3

    def test_clear_resets_origin(self):
        ticks = iter([10.0, 20.0, 30.0])
        recorder = WorkloadRecorder(clock=lambda: next(ticks))
        recorder.record_query(PPRQuery(seed=1, k=10))
        recorder.clear()
        assert len(recorder) == 0
        recorder.record_query(PPRQuery(seed=2, k=10))
        recorder.record_query(PPRQuery(seed=3, k=10))
        assert [r.offset_seconds for r in recorder.records] == [0.0, 10.0]

    def test_save_and_load(self, tmp_path):
        ticks = iter([0.0, 0.1])
        recorder = WorkloadRecorder(clock=lambda: next(ticks))
        recorder.record_query(PPRQuery(seed=1, k=10), timeout_ms=25.0)
        recorder.record_query(PPRQuery(seed=2, k=20, alpha=0.9, length=4))
        path = tmp_path / "trace.jsonl"
        assert recorder.save(path) == 2
        # Plain JSONL: one object per line, parseable by anything.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["timeout_ms"] == 25.0
        assert load_trace(path) == list(recorder.records)

    def test_load_rejects_bad_lines_with_position(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"offset_seconds": 0.0, "seed": 1, "k": 10, "alpha": 0.85, "length": 6}\n'
            "\n"  # blank lines are fine
            "{oops\n"
        )
        with pytest.raises(ValueError, match=r"trace\.jsonl:3"):
            load_trace(path)

    def test_save_trace_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert save_trace([], path) == 0
        assert load_trace(path) == []


class TestReplay:
    def test_replay_reproduces_answers(self, small_ba_graph, config):
        records = [
            TraceRecord(offset_seconds=0.0, seed=3, k=10, alpha=0.85, length=6),
            TraceRecord(offset_seconds=0.01, seed=7, k=10, alpha=0.85, length=6),
            TraceRecord(offset_seconds=0.02, seed=3, k=10, alpha=0.85, length=6),
        ]
        with QueryEngine(MeLoPPRSolver(small_ba_graph, config)) as reference:
            expected = [
                dict(result.scores.items())
                for result in reference.solve_batch(
                    [r.to_query() for r in records]
                )
            ]
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        with engine:
            outcomes = replay_trace_sync(engine, records, speed=10.0)
        assert [isinstance(o, PPRResult) for o in outcomes] == [True] * 3
        assert [dict(o.scores.items()) for o in outcomes] == expected

    def test_replay_speed_must_be_positive(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        with engine:
            with pytest.raises(ValueError, match="speed"):
                replay_trace_sync(engine, [], speed=0.0)

    def test_replay_returns_rejections_in_place(self, small_ba_graph, config):
        """Shed queries come back as the exception object, in trace order."""
        records = [
            TraceRecord(offset_seconds=0.0, seed=s, k=10, alpha=0.85, length=6)
            for s in range(8)
        ]
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        with engine:
            outcomes = replay_trace_sync(
                engine,
                records,
                admission=AdmissionController(max_pending=2),
                speed=1000.0,
            )
        assert len(outcomes) == 8
        completed = [o for o in outcomes if isinstance(o, PPRResult)]
        shed = [o for o in outcomes if isinstance(o, QueryShedError)]
        assert len(completed) + len(shed) == 8
        assert completed, "some queries must get through"

    def test_replay_timeout_override(self, small_ba_graph, config):
        records = [
            TraceRecord(
                offset_seconds=0.0, seed=3, k=10, alpha=0.85, length=6,
                timeout_ms=0.000001,  # recorded deadline: instantly dead
            )
        ]
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        with engine:
            # Overriding with None disables the recorded deadline.
            outcomes = replay_trace_sync(engine, records, timeout_ms=None)
        assert isinstance(outcomes[0], PPRResult)


class TestServerIntegration:
    def test_tcp_server_records_accepted_only(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        recorder = WorkloadRecorder()

        async def run():
            async with MicroBatcher(engine) as batcher:
                server = AsyncQueryServer(batcher, recorder=recorder)
                host, port = await server.start()
                try:
                    client = await AsyncClient.connect(host, port)
                    await client.solve(seed=3, k=10)
                    # Rejected requests must not pollute the trace.
                    await client.request({"seed": "junk"})
                    await client.request({"op": "nonsense"})
                    await client.solve(seed=7, k=20, timeout_ms=5000)
                    await client.close()
                finally:
                    await server.stop()

        with engine:
            asyncio.run(run())
        records = recorder.records
        assert [r.seed for r in records] == [3, 7]
        assert records[0].offset_seconds == 0.0
        assert records[1].timeout_ms == 5000.0

    def test_http_server_records_accepted_only(self, small_ba_graph, config):
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        recorder = WorkloadRecorder()

        async def run():
            async with MicroBatcher(engine) as batcher:
                server = HttpQueryServer(batcher, recorder=recorder)
                host, port = await server.start()
                try:
                    async with HttpClient(host, port) as client:
                        status, _ = await client.query({"seed": 3, "k": 10})
                        assert status == 200
                        status, _ = await client.query({"seed": True})
                        assert status == 400
                        status, _ = await client.query(
                            {"seed": 7, "k": 20, "timeout_ms": 5000}
                        )
                        assert status == 200
                finally:
                    await server.stop()

        with engine:
            asyncio.run(run())
        records = recorder.records
        assert [r.seed for r in records] == [3, 7]
        assert records[1].timeout_ms == 5000.0

    def test_recorded_trace_replays_cleanly(self, small_ba_graph, config, tmp_path):
        """The loop the module exists for: record live traffic, save,
        load, replay — and get the same answers."""
        engine = QueryEngine(MeLoPPRSolver(small_ba_graph, config))
        recorder = WorkloadRecorder()

        async def run():
            async with MicroBatcher(engine) as batcher:
                server = HttpQueryServer(batcher, recorder=recorder)
                host, port = await server.start()
                try:
                    async with HttpClient(host, port) as client:
                        answers = []
                        for seed in (3, 7, 11):
                            status, body = await client.query(
                                {"seed": seed, "k": 10}
                            )
                            assert status == 200
                            answers.append(body["top"])
                        return answers
                finally:
                    await server.stop()

        with engine:
            live_answers = asyncio.run(run())
            path = tmp_path / "live.jsonl"
            recorder.save(path)
            outcomes = replay_trace_sync(engine, load_trace(path), speed=100.0)
        replayed = [
            [[int(n), float(s)] for n, s in outcome.top_k()]
            for outcome in outcomes
        ]
        assert replayed == live_answers
