"""Tests for E15, the HTTP soak/overload study.

The dataclass arithmetic (degradation, shed rate, JSON shape) is pinned on
synthetic runs; one small real soak then proves the study's core claims
end-to-end: sustained shedding at 10x with a conserved outcome ledger and
``/metrics`` agreement (enforced inside ``run_soak_study`` itself).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.soak_study import (
    SoakRun,
    SoakStudy,
    _extend_for_multiplier,
    format_soak,
    main,
    run_soak_study,
)
from repro.experiments.workloads import make_open_loop_workload


def make_run(label, multiplier, goodput, offered=100, shed=0, expired=0):
    completed = offered - shed - expired
    return SoakRun(
        label=label,
        multiplier=multiplier,
        rate_qps=multiplier * 100.0,
        offered=offered,
        completed=completed,
        shed=shed,
        expired=expired,
        wall_seconds=completed / goodput if goodput else 0.0,
        goodput_qps=goodput,
        p50_ms=1.0,
        p95_ms=2.0,
        p99_ms=3.0,
        server_completed=completed,
        server_shed=shed,
    )


def make_study(runs):
    return SoakStudy(
        dataset="G1",
        capacity_qps=100.0,
        num_seeds=5,
        num_arrivals=60,
        max_pending=8,
        pool_size=16,
        runs=tuple(runs),
    )


class TestSoakMath:
    def test_shed_rate(self):
        run = make_run("1x", 1.0, 90.0, offered=200, shed=50)
        assert run.shed_rate == 0.25
        empty = make_run("1x", 1.0, 0.0, offered=0)
        assert empty.shed_rate == 0.0

    def test_peak_and_degradation(self):
        study = make_study(
            [
                make_run("0.5x", 0.5, 80.0),
                make_run("1x", 1.0, 100.0),
                make_run("10x", 10.0, 75.0, shed=500, offered=1000),
            ]
        )
        assert study.peak_goodput_qps == 100.0
        assert study.overload_degradation == pytest.approx(0.25)

    def test_degradation_zero_when_overload_is_peak(self):
        study = make_study(
            [make_run("1x", 1.0, 90.0), make_run("10x", 10.0, 95.0)]
        )
        # The 10x run served *more* than 1x: no degradation (clamped sign
        # convention: negative loss is reported as a negative number, which
        # still passes any <= threshold).
        assert study.overload_degradation <= 0.0

    def test_degradation_keys_on_multiplier_not_order(self):
        study = make_study(
            [make_run("10x", 10.0, 50.0), make_run("1x", 1.0, 100.0)]
        )
        assert study.overload_degradation == pytest.approx(0.5)

    def test_by_label(self):
        study = make_study([make_run("1x", 1.0, 90.0)])
        assert study.by_label()["1x"].goodput_qps == 90.0

    def test_as_dict_carries_the_gate_metric(self):
        """check_regression.py reads runs[].label + runs[].throughput_qps."""
        study = make_study(
            [make_run("1x", 1.0, 90.0), make_run("10x", 10.0, 85.0)]
        )
        payload = json.loads(json.dumps(study.as_dict()))
        assert [run["label"] for run in payload["runs"]] == ["1x", "10x"]
        for run in payload["runs"]:
            assert run["throughput_qps"] == run["goodput_qps"]
        assert payload["overload_degradation"] == pytest.approx(
            study.overload_degradation
        )

    def test_format_soak_mentions_every_run(self):
        study = make_study(
            [make_run("0.5x", 0.5, 80.0), make_run("10x", 10.0, 75.0)]
        )
        table = format_soak(study)
        assert "E15" in table
        assert "0.5x" in table and "10x" in table
        assert "capacity 100 qps" in table


class TestWorkloadTiling:
    def test_tiling_preserves_duration_and_scales_volume(self):
        workload = make_open_loop_workload(
            "G1", num_seeds=3, num_arrivals=10, k=20, rng=7
        )
        base_queries = list(workload.queries)
        base_arrivals = list(workload.arrival_seconds)

        queries, arrivals = _extend_for_multiplier(workload, 4.0)
        assert len(queries) == 4 * len(base_queries)
        assert len(arrivals) == 4 * len(base_arrivals)
        assert queries[: len(base_queries)] == base_queries
        # Each copy replays the same Poisson sequence, shifted by the span.
        span = base_arrivals[-1] + 1.0
        for copy in range(4):
            offset = copy * span
            chunk = arrivals[copy * len(base_arrivals) : (copy + 1) * len(base_arrivals)]
            assert chunk == pytest.approx([offset + at for at in base_arrivals])
        # Arrivals are monotone: copies do not overlap.
        assert arrivals == sorted(arrivals)

    def test_sub_unit_multiplier_is_one_copy(self):
        workload = make_open_loop_workload(
            "G1", num_seeds=3, num_arrivals=10, k=20, rng=7
        )
        queries, arrivals = _extend_for_multiplier(workload, 0.5)
        assert len(queries) == len(list(workload.queries))
        assert arrivals == pytest.approx(list(workload.arrival_seconds))


class TestSmallRealSoak:
    @pytest.fixture(scope="class")
    def study(self):
        # One small sweep shared by every assertion below; run_soak_study
        # itself enforces bit-identical answers and /metrics agreement.
        # The pool must be wider than the admission bound, or the
        # closed-loop connections can never overfill the queue and nothing
        # sheds no matter the offered rate.
        return run_soak_study(
            num_seeds=3,
            num_arrivals=24,
            multipliers=(1.0, 10.0),
            max_pending=4,
            pool_size=16,
        )

    def test_overload_sheds_not_collapses(self, study):
        overload = study.by_label()["10x"]
        assert overload.shed > 0, "10x offered load must shed"
        assert overload.completed > 0, "shedding must not starve service"
        # The acceptance claim, with slack for a tiny CI-sized run.
        assert study.overload_degradation <= 0.5

    def test_outcome_ledger_is_conserved(self, study):
        for run in study.runs:
            assert run.completed + run.shed + run.expired == run.offered
            assert run.server_completed == run.completed
            assert run.server_shed == run.shed
            assert 0.0 <= run.shed_rate <= 1.0

    def test_latency_percentiles_ordered(self, study):
        for run in study.runs:
            assert 0.0 <= run.p50_ms <= run.p95_ms <= run.p99_ms

    def test_overload_offers_proportionally_more(self, study):
        by_label = study.by_label()
        assert by_label["10x"].offered == 10 * by_label["1x"].offered
        assert by_label["10x"].rate_qps == pytest.approx(
            10 * by_label["1x"].rate_qps
        )

    def test_capacity_is_positive_and_finite(self, study):
        assert 0 < study.capacity_qps < float("inf")


class TestCli:
    def test_main_writes_json(self, tmp_path, capsys):
        out = tmp_path / "soak.json"
        code = main(
            [
                "--num-seeds", "3",
                "--num-arrivals", "16",
                "--multipliers", "1", "10",
                "--pool-size", "8",
                "--json", str(out),
            ]
        )
        assert code == 0
        assert "E15" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert [run["label"] for run in payload["runs"]] == ["1x", "10x"]
        for run in payload["runs"]:
            assert run["throughput_qps"] == run["goodput_qps"]
