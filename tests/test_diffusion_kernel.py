"""Tests for repro.diffusion.diffusion (the GD(l)(S0) kernel)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.diffusion import (
    DEFAULT_ALPHA,
    diffusion_work,
    graph_diffusion,
    seed_vector,
)
from repro.diffusion.transition import TransitionOperator


class TestSeedVector:
    def test_one_hot(self):
        vector = seed_vector(5, 3)
        assert vector[3] == 1.0
        assert vector.sum() == 1.0

    def test_custom_value(self):
        assert seed_vector(4, 0, value=2.5)[0] == 2.5

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            seed_vector(4, 4)


class TestGraphDiffusion:
    def test_length_zero_is_identity(self, triangle_graph):
        initial = seed_vector(3, 0)
        result = graph_diffusion(triangle_graph, initial, 0, 0.85)
        np.testing.assert_allclose(result.accumulated, initial)
        np.testing.assert_allclose(result.residual, initial)

    def test_matches_recursive_definition(self, small_ba_graph):
        """S_{l+1} = (1 - a) S0 + a W S_l (Eq. 1), iterated explicitly."""
        alpha, length = 0.85, 4
        operator = TransitionOperator(small_ba_graph)
        initial = seed_vector(small_ba_graph.num_nodes, 7)
        expected = initial.copy()
        for _ in range(length):
            expected = (1 - alpha) * initial + alpha * operator.apply(expected)
        result = graph_diffusion(operator, initial, length, alpha)
        np.testing.assert_allclose(result.accumulated, expected, atol=1e-12)

    def test_residual_is_walk_power(self, small_ba_graph):
        operator = TransitionOperator(small_ba_graph)
        initial = seed_vector(small_ba_graph.num_nodes, 3)
        result = graph_diffusion(operator, initial, 3, 0.85)
        np.testing.assert_allclose(
            result.residual, operator.apply_power(initial, 3), atol=1e-12
        )

    def test_mass_conservation_connected_graph(self, triangle_graph):
        result = graph_diffusion(triangle_graph, seed_vector(3, 0), 5, 0.85)
        assert result.score_mass() == pytest.approx(1.0)

    def test_alpha_zero_keeps_all_mass_at_seed(self, star_graph):
        result = graph_diffusion(star_graph, seed_vector(7, 0), 3, 0.0)
        assert result.accumulated[0] == pytest.approx(1.0)
        assert result.accumulated[1:].sum() == pytest.approx(0.0)

    def test_alpha_one_is_pure_walk(self, star_graph):
        result = graph_diffusion(star_graph, seed_vector(7, 0), 1, 1.0)
        np.testing.assert_allclose(result.accumulated, result.residual)

    def test_fig1_first_iteration(self, fig1_graph):
        """Fig. 1 of the paper: S1 = (1-a) S0 + a W S0 with a = 1/10."""
        alpha = 0.1
        result = graph_diffusion(fig1_graph, seed_vector(4, 0), 1, alpha)
        expected = [0.9, 0.1 / 3, 0.1 / 3, 0.1 / 3]
        np.testing.assert_allclose(result.accumulated, expected, atol=1e-12)

    def test_operator_and_graph_inputs_agree(self, small_ba_graph):
        initial = seed_vector(small_ba_graph.num_nodes, 11)
        via_graph = graph_diffusion(small_ba_graph, initial, 3, 0.85)
        via_operator = graph_diffusion(
            TransitionOperator(small_ba_graph), initial, 3, 0.85
        )
        np.testing.assert_allclose(via_graph.accumulated, via_operator.accumulated)

    def test_scores_non_negative(self, small_citation_graph):
        result = graph_diffusion(
            small_citation_graph, seed_vector(small_citation_graph.num_nodes, 5), 6, 0.85
        )
        assert (result.accumulated >= -1e-15).all()
        assert (result.residual >= -1e-15).all()

    def test_propagations_counted(self, star_graph):
        result = graph_diffusion(star_graph, seed_vector(7, 0), 2, 0.85)
        # Iteration 1 scans the centre's 6 edges, iteration 2 scans the six
        # leaves' single edges.
        assert result.propagations == 12

    def test_wrong_initial_shape(self, triangle_graph):
        with pytest.raises(ValueError):
            graph_diffusion(triangle_graph, np.zeros(5), 2, 0.85)

    def test_negative_length_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            graph_diffusion(triangle_graph, np.zeros(3), -1, 0.85)

    def test_bad_alpha_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            graph_diffusion(triangle_graph, seed_vector(3, 0), 2, 1.5)

    def test_linearity_in_initial_vector(self, small_ba_graph, rng):
        """GD(l) is linear: GD(a + b) = GD(a) + GD(b)."""
        n = small_ba_graph.num_nodes
        a = rng.random(n)
        b = rng.random(n)
        operator = TransitionOperator(small_ba_graph)
        combined = graph_diffusion(operator, a + b, 3, 0.85).accumulated
        separate = (
            graph_diffusion(operator, a, 3, 0.85).accumulated
            + graph_diffusion(operator, b, 3, 0.85).accumulated
        )
        np.testing.assert_allclose(combined, separate, atol=1e-10)

    def test_default_alpha_constant(self):
        assert DEFAULT_ALPHA == 0.85


class TestDiffusionWork:
    def test_upper_bound_formula(self, triangle_graph):
        assert diffusion_work(triangle_graph, 4) == 2 * 3 * 4

    def test_zero_length(self, triangle_graph):
        assert diffusion_work(triangle_graph, 0) == 0

    def test_bounds_actual_propagations(self, small_ba_graph):
        result = graph_diffusion(
            small_ba_graph, seed_vector(small_ba_graph.num_nodes, 0), 3, 0.85
        )
        assert result.propagations <= diffusion_work(small_ba_graph, 3)
