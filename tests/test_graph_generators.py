"""Tests for repro.graph.generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    citation_graph,
    community_graph,
    configuration_model_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    stochastic_block_model,
    watts_strogatz_graph,
)
from repro.graph.stats import compute_stats


class TestDeterminism:
    """Every generator must be reproducible for a fixed seed."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: erdos_renyi_graph(100, 0.05, rng=seed),
            lambda seed: barabasi_albert_graph(100, 2, rng=seed),
            lambda seed: watts_strogatz_graph(100, 4, 0.1, rng=seed),
            lambda seed: citation_graph(100, 3.0, rng=seed),
            lambda seed: community_graph(100, 5.0, rng=seed),
            lambda seed: powerlaw_cluster_graph(100, 2, 0.5, rng=seed),
            lambda seed: configuration_model_graph([3] * 50, rng=seed),
            lambda seed: stochastic_block_model([30, 30], 0.2, 0.01, rng=seed),
        ],
        ids=[
            "erdos_renyi",
            "barabasi_albert",
            "watts_strogatz",
            "citation",
            "community",
            "powerlaw_cluster",
            "configuration",
            "sbm",
        ],
    )
    def test_same_seed_same_graph(self, factory):
        assert factory(7) == factory(7)

    def test_different_seed_different_graph(self):
        assert barabasi_albert_graph(100, 2, rng=1) != barabasi_albert_graph(100, 2, rng=2)


class TestErdosRenyi:
    def test_node_count(self):
        assert erdos_renyi_graph(50, 0.1, rng=1).num_nodes == 50

    def test_zero_probability_gives_no_edges(self):
        assert erdos_renyi_graph(50, 0.0, rng=1).num_edges == 0

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(50, 1.5, rng=1)


class TestBarabasiAlbert:
    def test_connected_backbone(self):
        graph = barabasi_albert_graph(200, 2, rng=1)
        assert graph.degrees().min() >= 1

    def test_hub_formation(self):
        graph = barabasi_albert_graph(500, 2, rng=1)
        stats = compute_stats(graph)
        assert stats.max_degree > 5 * stats.average_degree

    def test_attachment_must_be_smaller_than_nodes(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(3, 3, rng=1)


class TestWattsStrogatz:
    def test_no_rewiring_is_ring_lattice(self):
        graph = watts_strogatz_graph(20, 2, 0.0, rng=1)
        assert all(graph.degree(node) == 2 for node in range(20))

    def test_rejects_too_many_neighbors(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(5, 6, 0.1, rng=1)


class TestStochasticBlockModel:
    def test_block_structure(self):
        graph = stochastic_block_model([50, 50], 0.3, 0.0, rng=1)
        # With zero between-probability no edge crosses the block boundary.
        for u, v in graph.iter_edges():
            assert (u < 50) == (v < 50)

    def test_node_count_matches_block_sizes(self):
        graph = stochastic_block_model([10, 20], 0.3, 0.05, rng=1)
        assert graph.num_nodes == 30

    def test_rejects_empty_blocks(self):
        with pytest.raises(ValueError):
            stochastic_block_model([], 0.1, 0.1, rng=1)


class TestConfigurationModel:
    def test_respects_degree_scale(self):
        degrees = [4] * 100
        graph = configuration_model_graph(degrees, rng=1)
        # Simple-graph projection can lose a few stubs but not many.
        assert graph.degrees().mean() > 2.5

    def test_odd_total_degree_handled(self):
        graph = configuration_model_graph([3, 2, 2], rng=1)
        assert graph.num_nodes == 3

    def test_rejects_negative_degree(self):
        with pytest.raises(ValueError):
            configuration_model_graph([2, -1], rng=1)

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError):
            configuration_model_graph([], rng=1)


class TestDomainGenerators:
    def test_citation_graph_is_sparse(self):
        graph = citation_graph(500, 3.0, rng=1)
        stats = compute_stats(graph)
        assert 1.5 <= stats.average_degree <= 6.0
        assert stats.isolated_nodes == 0

    def test_community_graph_average_degree(self):
        graph = community_graph(500, 6.0, rng=1)
        stats = compute_stats(graph)
        assert 3.0 <= stats.average_degree <= 9.0

    def test_community_graph_has_heavy_tail(self):
        graph = community_graph(1000, 6.0, rng=1)
        stats = compute_stats(graph)
        assert stats.max_degree > 4 * stats.average_degree

    def test_powerlaw_cluster_rejects_bad_triangle_probability(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(100, 2, 1.5, rng=1)
