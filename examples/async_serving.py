"""Async serving example: a TCP/JSON query service and a pipelining client.

Stands up the full online request path in one process — engine (async
backend + sub-graph cache) → micro-batching scheduler → admission control →
TCP server speaking newline-delimited JSON — then drives it with an
:class:`~repro.serving.frontend.AsyncClient`:

1. a pipelined burst of hot-seed queries (duplicates included, so the
   batcher's dedup and the engine's cache both engage),
2. a verification that every answer matches the offline
   ``QueryEngine.solve_batch`` reference exactly,
3. the server's own stats report: batches formed, dedup hits, cache hit
   rate, and p50/p95/p99 end-to-end latency,
4. a deliberately over-tight deadline showing the explicit ``deadline``
   rejection (no silent stale answers).

Run with::

    PYTHONPATH=src python examples/async_serving.py
"""

from __future__ import annotations

import asyncio

from repro.graph import load_dataset
from repro.meloppr import MeLoPPRConfig, MeLoPPRSolver
from repro.meloppr.selection import RatioSelector
from repro.ppr import PPRQuery
from repro.serving import QueryEngine, SubgraphCache, make_backend
from repro.serving.frontend import (
    AdmissionController,
    AsyncClient,
    AsyncQueryServer,
    BatchPolicy,
    DeadlineExceededError,
    MicroBatcher,
)


async def main() -> None:
    graph = load_dataset("G1")  # the citeseer stand-in
    print(f"Loaded {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges")

    config = MeLoPPRConfig(
        stage_lengths=(3, 3),
        selector=RatioSelector(0.02),
        score_table_factor=10,
        track_memory=False,
    )
    # Hot-seed burst: 6 seeds, each queried 5 times, order shuffled.
    seeds = [42, 7, 99, 512, 7, 42] * 5
    queries = [PPRQuery(seed=seed, k=100) for seed in seeds]

    # Offline reference: what every online answer must match exactly.
    with QueryEngine(MeLoPPRSolver(graph, config)) as reference_engine:
        reference = {
            query: result.top_k()
            for query, result in zip(
                queries, reference_engine.solve_batch(queries)
            )
        }

    engine = QueryEngine(
        MeLoPPRSolver(graph, config),
        backend=make_backend("async:4"),
        cache=SubgraphCache(),
    )
    policy = BatchPolicy(max_batch_size=8, max_wait_ms=2.0, dedup=True)
    admission = AdmissionController(max_pending=64)

    async with MicroBatcher(engine, policy, admission) as batcher:
        async with AsyncQueryServer(batcher) as server:
            host, port = server.address
            print(f"Serving on {host}:{port} (policy {policy.label})\n")

            client = await AsyncClient.connect(host, port)
            try:
                # Pipelined burst: all requests in flight at once.
                answers = await asyncio.gather(
                    *(client.solve(seed=q.seed, k=q.k) for q in queries)
                )
                matches = sum(
                    answer == [(int(n), float(s)) for n, s in reference[query]]
                    for query, answer in zip(queries, answers)
                )
                print(
                    f"Burst of {len(queries)} queries answered; "
                    f"{matches}/{len(queries)} bit-identical to the offline engine"
                )

                stats = await client.stats()
                latency = stats["admission"]["latency"]
                print(
                    f"Server formed {stats['batches']} batches "
                    f"(mean size {stats['mean_batch_size']:.1f}), "
                    f"dedup served {stats['dedup_hits']} waiters for free, "
                    f"cache hit rate {stats['engine']['cache']['hit_rate']:.0%}"
                )
                print(
                    "End-to-end latency: "
                    f"p50 {latency['p50_seconds'] * 1e3:.2f} ms, "
                    f"p95 {latency['p95_seconds'] * 1e3:.2f} ms, "
                    f"p99 {latency['p99_seconds'] * 1e3:.2f} ms"
                )

                # Deadlines are enforced, not advisory: an impossible budget
                # is answered with an explicit rejection.
                try:
                    await client.solve(seed=1234, k=100, timeout_ms=0.01)
                    print("Deadline demo: unexpectedly fast machine!")
                except DeadlineExceededError:
                    print(
                        "Deadline demo: 0.01 ms budget correctly rejected "
                        "with error='deadline'"
                    )
            finally:
                await client.close()
    engine.close()


if __name__ == "__main__":
    asyncio.run(main())
