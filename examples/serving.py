"""Serving-engine example: batch queries, cache extractions, compare backends.

Builds a hot-seed workload (a handful of seeds queried repeatedly, as real
traffic would) and answers it four ways — serial/cold, serial/cached,
threaded/cold, threaded/cached — printing throughput, mean latency and the
sub-graph cache hit rate, and verifying all four return identical answers.
Then does it again with the host graph partitioned into shards, each ego
extraction routed to the shard owning its centre (per-shard caches), and
verifies the sharded answers match too.  Finally the same workload runs on
the shared-memory process pool — the backend that actually scales with
cores — and the answers are verified one more time.

Run with::

    PYTHONPATH=src python examples/serving.py
"""

from __future__ import annotations

import os

from repro.graph import load_dataset, partition_graph
from repro.meloppr import MeLoPPRConfig, MeLoPPRSolver
from repro.meloppr.selection import RatioSelector
from repro.ppr import PPRQuery
from repro.serving import (
    QueryEngine,
    SerialBackend,
    ShardRouter,
    SubgraphCache,
    ThreadPoolBackend,
    make_backend,
)


def main() -> None:
    graph = load_dataset("G1")  # the citeseer stand-in
    print(f"Loaded {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # Hot-seed workload: 6 seeds, each queried 5 times.
    seeds = [42, 7, 99, 512, 7, 42] * 5
    queries = [PPRQuery(seed=seed, k=100) for seed in seeds]
    config = MeLoPPRConfig(
        stage_lengths=(3, 3),
        selector=RatioSelector(0.02),
        score_table_factor=10,
        track_memory=False,  # wall-clock numbers, not tracemalloc overhead
    )

    reference = None
    for label, backend, cache in (
        ("serial, cold cache  ", SerialBackend(), None),
        ("serial, warm cache  ", SerialBackend(), SubgraphCache()),
        ("4 threads, cold     ", ThreadPoolBackend(4), None),
        ("4 threads, warm     ", ThreadPoolBackend(4), SubgraphCache()),
    ):
        with QueryEngine(MeLoPPRSolver(graph, config), backend=backend, cache=cache) as engine:
            results = engine.solve_batch(queries)
            stats = engine.stats()
        answers = [result.top_k_nodes() for result in results]
        if reference is None:
            reference = answers
        assert answers == reference, "backends must not change answers"
        hit_rate = "  (no cache)" if stats.cache is None else f"  hit rate {stats.cache.hit_rate:.0%}"
        print(
            f"{label} {stats.throughput_qps:7.1f} qps   "
            f"mean latency {stats.mean_latency_seconds * 1e3:6.2f} ms{hit_rate}"
        )

    print(f"\nAll {len(queries)} queries returned identical top-k answers.")

    # Sharded serving: partition the host graph, route each extraction to the
    # shard owning its centre.  halo_depth=3 covers the (3, 3) stage split,
    # so every extraction is shard-local and answers stay bit-identical.
    print("\nSharded serving (per-shard caches, halo depth 3):")
    for strategy in ("hash", "range", "degree"):
        partition = partition_graph(graph, 4, strategy=strategy, halo_depth=3)
        router = ShardRouter(partition)
        with QueryEngine(MeLoPPRSolver(graph, config), router=router) as engine:
            results = engine.solve_batch(queries)
            stats = engine.stats()
        answers = [result.top_k_nodes() for result in results]
        assert answers == reference, "sharding must not change answers"
        router_stats = stats.router
        print(
            f"{strategy:>6}, 4 shards    {stats.throughput_qps:7.1f} qps   "
            f"hit rate {router_stats.hit_rate:.0%}   "
            f"fallbacks {router_stats.fallback_rate:.0%}   "
            f"halo {partition.halo_overhead_bytes() / 1024:.0f} KB"
        )

    # Process-pool serving: workers attach the graph's CSR buffers from
    # shared memory (zero-copy) and execute the stage tasks; planning and
    # folding stay here, so the answers are bit-identical again.
    workers = min(4, os.cpu_count() or 1)
    print(f"\nProcess-pool serving ({workers} workers, shared-memory graph):")
    with QueryEngine(
        MeLoPPRSolver(graph, config), backend=make_backend(f"process:{workers}")
    ) as engine:
        results = engine.solve_batch(queries)
        stats = engine.stats()
    answers = [result.top_k_nodes() for result in results]
    assert answers == reference, "process workers must not change answers"
    print(
        f"process:{workers}           {stats.throughput_qps:7.1f} qps   "
        f"mean latency {stats.mean_latency_seconds * 1e3:6.2f} ms   "
        f"worker-cache hit rate {stats.cache.hit_rate:.0%}"
    )


if __name__ == "__main__":
    main()
