"""Who-to-follow style recommendations on a social-network graph.

The paper motivates PPR with recommender systems (who-to-follow on Twitter,
related products on Amazon).  This example builds a synthetic social network
with community structure, picks a few "users", and produces their top-10
recommendations with MeLoPPR, excluding nodes they are already connected to —
exactly how a PPR-based recommender consumes the ranking.

It also shows the latency/precision dial: the same query is answered at three
next-stage budgets and the resulting recommendation overlap with the exact
ranking is reported.

Run with::

    python examples/recommender.py
"""

from __future__ import annotations

from repro.graph import community_graph
from repro.meloppr import MeLoPPRConfig, MeLoPPRSolver, RatioSelector
from repro.ppr import LocalPPRSolver, PPRQuery, precision_at_k


def recommend(result, graph, user: int, count: int) -> list[int]:
    """Top ``count`` ranked nodes that are not the user or existing contacts."""
    existing = set(graph.neighbors(user).tolist()) | {user}
    picks = []
    for node, _score in result.scores.top_k(count + len(existing)):
        if node not in existing:
            picks.append(node)
        if len(picks) == count:
            break
    return picks


def main() -> None:
    # A 2000-user social network with heavy-tailed degrees and clustering.
    graph = community_graph(2_000, average_degree=6.0, rng=2024, name="social")
    print(f"Social graph: {graph.num_nodes} users, {graph.num_edges} connections")

    users = [17, 901, 1500]
    for user in users:
        query = PPRQuery(seed=user, k=100, alpha=0.85, length=6)
        exact = LocalPPRSolver(graph, track_memory=False).solve(query)
        exact_recs = recommend(exact, graph, user, 10)

        print(f"\nUser {user} (degree {graph.degree(user)}):")
        for ratio in (0.01, 0.05, 0.10):
            config = MeLoPPRConfig(
                stage_lengths=(3, 3),
                selector=RatioSelector(ratio),
                score_table_factor=10,
                track_memory=False,
            )
            result = MeLoPPRSolver(graph, config).solve(query)
            recs = recommend(result, graph, user, 10)
            overlap = precision_at_k(recs, exact_recs, 10)
            print(
                f"  budget {ratio:>4.0%}: recommendations {recs[:5]}... "
                f"overlap with exact top-10: {overlap:.0%}, "
                f"latency {result.elapsed_seconds * 1e3:.1f} ms"
            )
        print(f"  exact top-10: {exact_recs}")


if __name__ == "__main__":
    main()
