"""Exploring the CPU+FPGA co-design: parallelism, resources and latency.

This example mirrors the hardware sections of the paper: it runs the same
MeLoPPR query through the modelled KC705 accelerator at several parallelism
values, printing the latency breakdown (CPU BFS vs FPGA diffusion /
scheduling / data movement), the BRAM footprint of the per-PE tables and the
device utilisation — the numbers a hardware designer would look at before
choosing ``P``.

Run with::

    python examples/fpga_codesign.py
"""

from __future__ import annotations

from repro.graph import load_dataset
from repro.hardware import KC705, MeLoPPRFPGASolver, ResourceModel
from repro.meloppr import MeLoPPRConfig, MeLoPPRSolver, RatioSelector
from repro.ppr import PPRQuery


def main() -> None:
    import numpy as np

    graph = load_dataset("G3")  # pubmed stand-in — the densest small graph
    # A well-connected but not extreme seed: the 90th-percentile degree node.
    seed = int(np.argsort(graph.degrees())[int(graph.num_nodes * 0.9)])
    query = PPRQuery(seed=seed, k=200, alpha=0.85, length=6)
    config = MeLoPPRConfig(
        stage_lengths=(3, 3),
        selector=RatioSelector(0.05),
        score_table_factor=10,
        track_memory=False,
    )

    cpu_result = MeLoPPRSolver(graph, config).solve(query)
    print(
        f"Query on {graph.name}: seed {seed}, "
        f"{cpu_result.metadata['num_tasks']} sub-graph diffusions, "
        f"MeLoPPR-CPU latency {cpu_result.elapsed_seconds * 1e3:.1f} ms\n"
    )

    resources = ResourceModel()
    print(f"{'P':>3} {'total ms':>9} {'cpu bfs':>9} {'diffusion':>10} "
          f"{'scheduling':>11} {'data mv':>9} {'PE BRAM KB':>11} {'LUT %':>7} {'BRAM %':>7}")
    for parallelism in (1, 2, 4, 8, 16):
        solver = MeLoPPRFPGASolver(graph, config, parallelism=parallelism)
        result = solver.solve(query)
        cosim = result.metadata["cosim"]
        fpga = cosim.fpga_report
        usage = resources.usage(parallelism)
        print(
            f"{parallelism:>3} "
            f"{cosim.total_seconds * 1e3:>9.2f} "
            f"{cosim.cpu_seconds * 1e3:>9.2f} "
            f"{fpga.diffusion_seconds * 1e3:>10.3f} "
            f"{fpga.scheduling_seconds * 1e3:>11.3f} "
            f"{fpga.data_movement_seconds * 1e3:>9.3f} "
            f"{fpga.peak_pe_bram_bytes / 1024:>11.1f} "
            f"{usage.lut_fraction:>7.1%} "
            f"{usage.bram_fraction:>7.1%}"
        )

    print(
        f"\nDevice: {KC705.name} @ {KC705.clock_hz / 1e6:.0f} MHz, "
        f"{KC705.total_bram_bytes / 1024:.0f} KB BRAM, {KC705.total_luts} LUTs"
    )
    print(
        "Note: beyond the point where the FPGA time falls below the CPU BFS "
        "time, adding PEs no longer reduces the end-to-end latency — the "
        "paper's observation that BFS extraction becomes the bottleneck."
    )


if __name__ == "__main__":
    main()
