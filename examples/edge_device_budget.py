"""Serving PPR queries under a tight memory budget (the edge-device scenario).

The paper's motivation: a PPR server on a memory-constrained device must
answer queries within a latency target without ever materialising the full
depth-L neighbourhood.  This example sets an explicit working-set budget (in
KB), checks which of the paper's dataset stand-ins the single-stage baseline
would blow through, and shows how MeLoPPR stays inside the budget by
construction — then picks, per graph, the largest next-stage budget whose
latency stays under a target.

Run with::

    python examples/edge_device_budget.py
"""

from __future__ import annotations

import numpy as np

from repro.graph import load_paper_suite
from repro.meloppr import MeLoPPRConfig, MeLoPPRSolver, RatioSelector
from repro.ppr import LocalPPRSolver, PPRQuery, result_precision

#: Working-set budget of the hypothetical edge device (per query), in bytes.
MEMORY_BUDGET_BYTES = 256 * 1024

#: Response-time target per query.
LATENCY_BUDGET_SECONDS = 0.100


def main() -> None:
    suite = load_paper_suite(small_only=True)
    print(
        f"Edge budget: {MEMORY_BUDGET_BYTES // 1024} KB working set, "
        f"{LATENCY_BUDGET_SECONDS * 1e3:.0f} ms latency target\n"
    )

    for key, graph in suite.items():
        # A median-degree node: representative of the queries a service sees.
        degrees = graph.degrees()
        seed = int(np.argsort(degrees)[graph.num_nodes // 2])
        query = PPRQuery(seed=seed, k=200, alpha=0.85, length=6)

        baseline = LocalPPRSolver(graph, track_memory=False).solve(query)
        baseline_bytes = baseline.metadata["modelled_bytes"]
        verdict = "OK" if baseline_bytes <= MEMORY_BUDGET_BYTES else "EXCEEDS BUDGET"
        print(
            f"{key} ({graph.name}): baseline working set "
            f"{baseline_bytes / 1024:.0f} KB -> {verdict}"
        )

        # Latency grows with the next-stage budget, so sweep upwards and keep
        # the largest budget that still fits both constraints.
        best = None
        for ratio in (0.01, 0.02, 0.05, 0.10, 0.20):
            config = MeLoPPRConfig(
                stage_lengths=(3, 3),
                selector=RatioSelector(ratio),
                score_table_factor=10,
                track_memory=False,
            )
            result = MeLoPPRSolver(graph, config).solve(query)
            within_memory = result.metadata["modelled_bytes"] <= MEMORY_BUDGET_BYTES
            within_latency = result.elapsed_seconds <= LATENCY_BUDGET_SECONDS
            if within_memory and within_latency:
                best = (ratio, result)
            if not within_latency:
                break

        if best is None:
            print("    no MeLoPPR operating point fits both budgets\n")
            continue

        ratio, result = best
        precision = result_precision(result, baseline)
        print(
            f"    MeLoPPR @ {ratio:.0%} next-stage nodes: "
            f"{result.metadata['modelled_bytes'] / 1024:.0f} KB, "
            f"{result.elapsed_seconds * 1e3:.1f} ms, "
            f"precision {precision:.0%} "
            f"({result.metadata['num_tasks']} sub-graph diffusions)\n"
        )


if __name__ == "__main__":
    main()
