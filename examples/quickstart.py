"""Quickstart: answer a personalised-PageRank query with MeLoPPR.

Loads the citeseer stand-in, asks for the top-20 nodes most related to a seed
node, and compares MeLoPPR (at the paper's default configuration) with the
exact single-stage baseline — printing the ranking, the precision and the
memory the two approaches needed.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.graph import load_dataset
from repro.meloppr import MeLoPPRConfig, MeLoPPRSolver
from repro.ppr import LocalPPRSolver, PPRQuery, result_precision


def main() -> None:
    graph = load_dataset("G1")  # the citeseer stand-in (|V| = 3327)
    print(f"Loaded {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges")

    seed = 42
    query = PPRQuery(seed=seed, k=20, alpha=0.85, length=6)

    # The exact single-stage baseline: BFS of depth 6 + one long diffusion.
    baseline = LocalPPRSolver(graph).solve(query)

    # MeLoPPR with the paper's defaults: l1 = l2 = 3, top-2% next-stage nodes,
    # bounded global score table (c = 10).
    solver = MeLoPPRSolver(graph, MeLoPPRConfig.paper_default(selection_ratio=0.02))
    result = solver.solve(query)

    print(f"\nTop-10 nodes related to node {seed} (MeLoPPR):")
    for rank, (node, score) in enumerate(result.top_k(10), start=1):
        print(f"  {rank:2d}. node {node:5d}  score {score:.5f}")

    precision = result_precision(result, baseline)
    print(f"\nPrecision vs exact top-{query.k}: {precision:.1%}")
    print(
        "Peak memory: "
        f"MeLoPPR {result.peak_memory_bytes / 1e6:.3f} MB vs "
        f"baseline {baseline.peak_memory_bytes / 1e6:.3f} MB "
        f"({baseline.peak_memory_bytes / max(result.peak_memory_bytes, 1):.1f}x less)"
    )
    print(
        f"Sub-graph diffusions executed: {result.metadata['num_tasks']} "
        f"(largest sub-graph {result.metadata['max_subgraph_nodes']} nodes, "
        f"baseline ball {baseline.metadata['subgraph_nodes']} nodes)"
    )


if __name__ == "__main__":
    main()
